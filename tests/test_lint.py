"""Tests for the model-discipline lint: framework behaviour (registry,
noqa suppression, path scoping) plus one positive and one negative
fixture per ``REPROxxx`` rule."""

import pytest

from repro.analysis.lint import (
    LintRule,
    active_rules,
    format_findings,
    lint_paths,
    lint_source,
    package_relpath,
    rule,
    rule_catalog,
)
from repro.analysis.lint.core import suppressions
from repro.errors import ValidationError


def codes(source, path="repro/spatial/fixture.py"):
    return [f.code for f in lint_source(source, path)]


# --------------------------------------------------------------------- #
# rule fixtures: (rule, path, flagged source, clean source)
# --------------------------------------------------------------------- #

FIXTURES = [
    (
        "REPRO001",
        "repro/spatial/fixture.py",
        "x = machine.registers._regs['tmp']\n",
        "x = machine.registers['tmp']\n",
    ),
    (
        "REPRO002",
        "repro/spatial/fixture.py",
        "def f(regs):\n    a = regs.alloc('a')\n    return a\n",
        "def f(regs):\n    with regs.scope('a') as a:\n        return a + 0\n",
    ),
    (
        "REPRO003",
        "repro/spatial/fixture.py",
        (
            "def f(m, tree):\n"
            "    for i in range(tree.n):\n"
            "        m.send(i, tree.parent[i])\n"
        ),
        (
            "def f(m, tree, src, dst):\n"
            "    m.send(src, dst)\n"
            "    for i in range(tree.n):\n"
            "        total = i + 1\n"
            "    return total\n"
        ),
    ),
    (
        "REPRO004",
        "repro/spatial/fixture.py",
        "import numpy as np\nx = np.random.permutation(10)\n",
        (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.permutation(10)\n"
        ),
    ),
    (
        "REPRO005",
        "repro/spatial/fixture.py",
        "def f(m):\n    m.ledger.charge(10, 1)\n",
        "def f(m):\n    m.charge_external(10, 1)\n",
    ),
    (
        "REPRO006",
        "repro/spatial/fixture.py",
        "def f(m):\n    m.clock[:] = m.clock.max()\n",
        "def f(m):\n    peak = m.clock.max()\n    return peak\n",
    ),
    (
        "REPRO007",
        "repro/spatial/fixture.py",
        "def f(x):\n    print(x)\n",
        "def f(x):\n    return f'value: {x}'\n",
    ),
    (
        "REPRO008",
        "repro/spatial/fixture.py",
        "def f(arr):\n    arr.setflags(write=True)\n",
        "def f(arr):\n    arr = arr.copy()\n    return arr\n",
    ),
    (
        "REPRO009",
        "repro/spatial/fixture.py",
        "try:\n    x = 1\nexcept ValueError:\n    pass\n",
        "try:\n    x = 1\nexcept ValueError as exc:\n    raise RuntimeError('bad') from exc\n",
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "code,path,flagged,clean",
        FIXTURES,
        ids=[f[0] for f in FIXTURES],
    )
    def test_positive_fixture_is_flagged(self, code, path, flagged, clean):
        assert code in codes(flagged, path)

    @pytest.mark.parametrize(
        "code,path,flagged,clean",
        FIXTURES,
        ids=[f[0] for f in FIXTURES],
    )
    def test_negative_fixture_is_clean(self, code, path, flagged, clean):
        assert code not in codes(clean, path)


class TestPathScoping:
    def test_repro001_allowed_inside_registers_module(self):
        src = "x = self._regs['tmp']\n"
        assert codes(src, "repro/machine/registers.py") == []
        assert codes(src, "repro/machine/collectives.py") == ["REPRO001"]

    def test_repro003_only_hot_packages(self):
        src = (
            "def f(m, n):\n"
            "    for i in range(n):\n"
            "        m.send(i, 0)\n"
        )
        assert "REPRO003" in codes(src, "repro/machine/fixture.py")
        assert "REPRO003" not in codes(src, "repro/analysis/fixture.py")

    def test_repro005_006_allowed_inside_machine(self):
        src = "def f(m):\n    m.ledger.charge(1, 1)\n    m.clock[:] = 0\n"
        assert codes(src, "repro/machine/collectives.py") == []

    def test_repro007_allowed_in_cli(self):
        src = "print('hello')\n"
        assert codes(src, "repro/cli.py") == []
        assert codes(src, "repro/__main__.py") == []

    def test_package_relpath(self):
        assert package_relpath("src/repro/spatial/x.py") == "spatial/x.py"
        assert package_relpath("/abs/src/repro/machine/m.py") == "machine/m.py"
        assert package_relpath("./fixture.py") == "fixture.py"


class TestSuppression:
    SRC = "def f(x):\n    print(x)  # repro: noqa[REPRO007]\n"

    def test_targeted_noqa_suppresses(self):
        assert codes(self.SRC) == []

    def test_blanket_noqa_suppresses_everything(self):
        src = "def f(m):\n    m.ledger.charge(1, 1); print(1)  # repro: noqa\n"
        assert codes(src) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        src = "def f(x):\n    print(x)  # repro: noqa[REPRO001]\n"
        assert codes(src) == ["REPRO007"]

    def test_noqa_only_covers_its_line(self):
        src = (
            "def f(x):\n"
            "    print(x)  # repro: noqa[REPRO007]\n"
            "    print(x)\n"
        )
        assert codes(src) == ["REPRO007"]

    def test_comma_separated_codes_suppress_each(self):
        src = (
            "def f(m, x):\n"
            "    m.ledger.charge(1, 1); print(x)  # repro: noqa[REPRO005,REPRO007]\n"
        )
        assert codes(src) == []

    def test_comma_list_suppresses_only_listed(self):
        src = (
            "def f(m, x):\n"
            "    m.ledger.charge(1, 1); print(x)  # repro: noqa[REPRO005]\n"
        )
        assert codes(src) == ["REPRO007"]

    def test_multiple_noqa_comments_on_one_line_merge(self):
        src = (
            "def f(m, x):\n"
            "    m.ledger.charge(1, 1); print(x)"
            "  # repro: noqa[REPRO005]  # repro: noqa[REPRO007]\n"
        )
        assert codes(src) == []

    def test_other_tools_codes_mix_freely(self):
        # CHECKxxx codes ride in the same comment without breaking REPRO ones
        src = "def f(x):\n    print(x)  # repro: noqa[CHECK005, REPRO007]\n"
        assert codes(src) == []

    def test_blanket_wins_regardless_of_order(self):
        for comment in (
            "# repro: noqa  # repro: noqa[REPRO001]",
            "# repro: noqa[REPRO001]  # repro: noqa",
        ):
            src = f"def f(x):\n    print(x)  {comment}\n"
            assert codes(src) == [], comment

    def test_suppressions_map_shape(self):
        src = (
            "a = 1  # repro: noqa[REPRO001] # repro: noqa[CHECK002]\n"
            "b = 2  # repro: noqa\n"
        )
        assert suppressions(src) == {1: {"REPRO001", "CHECK002"}, 2: None}


class TestFramework:
    def test_catalog_has_at_least_eight_rules(self):
        rules = active_rules()
        assert len(rules) >= 8
        assert [r.code for r in rules] == sorted(r.code for r in rules)
        for r in rules:
            assert r.name and r.description

    def test_rule_catalog_shape(self):
        cat = rule_catalog()
        assert {"code", "name", "description"} == set(cat[0])

    def test_register_rejects_bad_code(self):
        with pytest.raises(ValidationError):

            @rule
            class Bad(LintRule):
                code = "XX1"
                name = "bad"
                description = "bad"

    def test_register_rejects_duplicate_code(self):
        with pytest.raises(ValidationError):

            @rule
            class Dup(LintRule):
                code = "REPRO001"
                name = "dup"
                description = "dup"

    def test_syntax_error_reported_as_repro000(self):
        (f,) = lint_source("def f(:\n", "fixture.py")
        assert f.code == "REPRO000"
        assert "syntax error" in f.message

    def test_findings_sorted_and_formatted(self):
        src = "print(1)\nx = m._regs\n"
        findings = lint_source(src, "repro/spatial/fixture.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        text = format_findings(findings)
        assert "repro/spatial/fixture.py:1:1: REPRO007" in text
        assert format_findings([]) == "no findings"

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "repro" / "spatial"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("print('x')\n")
        (pkg / "good.py").write_text("x = 1\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.code for f in findings] == ["REPRO007"]

    def test_lint_paths_missing_path_rejected(self):
        with pytest.raises(ValidationError):
            lint_paths(["/nonexistent/nope.py"])


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        findings = lint_paths(["src"])
        assert findings == [], format_findings(findings)
