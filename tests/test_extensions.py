"""Tests for the extension features added beyond the minimal reproduction:
alternative metrics (network obliviousness), the spider generator, ablation
knobs' correctness, and deeper coverage of analysis helpers."""

import numpy as np
import pytest

from repro.curves import distance_profile, empirical_alpha, get_curve
from repro.errors import ValidationError
from repro.machine import SpatialMachine, exclusive_scan, reduce
from repro.spatial import SpatialTree, list_rank
from repro.spatial.treefix import top_down_treefix, treefix_sum
from repro.trees import (
    bottom_up_treefix,
    prufer_random_tree,
    spider_tree,
    top_down_treefix as ref_top_down,
)


class TestChebyshevMetric:
    """§I-B: the model is network-oblivious — results are metric-agnostic
    and the energy bounds transfer within a constant factor."""

    def test_metric_validation(self):
        with pytest.raises(ValidationError):
            SpatialMachine(4, metric="taxicab-squared")

    def test_linf_sandwich(self):
        rng = np.random.default_rng(0)
        m1 = SpatialMachine(256, metric="manhattan")
        m2 = SpatialMachine(256, metric="chebyshev")
        src = rng.integers(0, 256, size=100)
        dst = rng.integers(0, 256, size=100)
        m1.send(src, dst)
        m2.send(src, dst)
        assert m2.energy <= m1.energy <= 2 * m2.energy

    def test_collectives_correct_under_linf(self):
        m = SpatialMachine(100, metric="chebyshev")
        vals = np.arange(100)
        assert reduce(m, vals) == vals.sum()
        assert np.array_equal(exclusive_scan(m, np.ones(100, dtype=np.int64)), np.arange(100))

    def test_treefix_correct_under_linf(self, rng):
        tree = prufer_random_tree(200, seed=1)
        layout_machine = SpatialMachine(200, metric="chebyshev")
        st = SpatialTree(
            __import__("repro.layout", fromlist=["TreeLayout"]).TreeLayout.build(tree),
            machine=layout_machine,
        )
        vals = rng.integers(0, 40, size=200)
        assert np.array_equal(treefix_sum(st, vals, seed=2), bottom_up_treefix(tree, vals))

    def test_linear_energy_still_holds_under_linf(self):
        per = []
        for n in (1024, 8192):
            m = SpatialMachine(n, metric="chebyshev")
            exclusive_scan(m, np.ones(n, dtype=np.int64))
            per.append(m.energy / n)
        assert per[1] <= per[0] * 1.2


class TestSpiderTree:
    def test_structure(self):
        t = spider_tree(5, 7)
        assert t.n == 36
        assert t.max_degree == 5
        assert t.height() == 7
        assert len(t.leaves()) == 5

    def test_degenerate_cases(self):
        assert spider_tree(1, 10).height() == 10  # a path
        assert spider_tree(10, 1).max_degree == 10  # a star

    def test_treefix_on_spider(self, rng):
        """Mixed compress (legs) + rake (center) stress."""
        t = spider_tree(16, 32)
        vals = rng.integers(0, 100, size=t.n)
        for mode in ("direct", "virtual"):
            st = SpatialTree.build(t, mode=mode)
            assert np.array_equal(treefix_sum(st, vals, seed=3), bottom_up_treefix(t, vals))

    def test_top_down_on_spider(self, rng):
        t = spider_tree(8, 16)
        vals = rng.integers(0, 100, size=t.n)
        st = SpatialTree.build(t)
        assert np.array_equal(top_down_treefix(st, vals, seed=4), ref_top_down(t, vals))

    def test_lca_on_spider(self, rng):
        from repro.spatial import lca_batch
        from repro.trees import BinaryLiftingLCA

        t = spider_tree(10, 12)
        us = rng.integers(0, t.n, size=40)
        vs = rng.integers(0, t.n, size=40)
        st = SpatialTree.build(t)
        assert np.array_equal(
            lca_batch(st, us, vs, seed=5), BinaryLiftingLCA(t).query_batch(us, vs)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            spider_tree(0, 5)
        with pytest.raises(ValidationError):
            spider_tree(5, 0)


class TestAblationKnobCorrectness:
    """Knobs change costs, never results."""

    def test_biased_treefix_correct(self, rng):
        t = prufer_random_tree(200, seed=6)
        vals = rng.integers(0, 50, size=200)
        expect = bottom_up_treefix(t, vals)
        for bias in (0.15, 0.85):
            st = SpatialTree.build(t)
            assert np.array_equal(treefix_sum(st, vals, seed=7, coin_bias=bias), expect)

    def test_biased_list_rank_correct(self):
        rng = np.random.default_rng(8)
        perm = rng.permutation(200)
        succ = np.full(200, -1, dtype=np.int64)
        succ[perm[:-1]] = perm[1:]
        expect = None
        for bias in (0.2, 0.5, 0.8):
            m = SpatialMachine(200)
            res = list_rank(m, succ, seed=9, coin_bias=bias)
            if expect is None:
                expect = res.ranks
            assert np.array_equal(res.ranks, expect)

    def test_sync_barriers_correct(self, rng):
        t = prufer_random_tree(150, seed=10)
        vals = rng.integers(0, 50, size=150)
        st = SpatialTree.build(t)
        got = treefix_sum(st, vals, seed=11, sync_barriers=True)
        assert np.array_equal(got, bottom_up_treefix(t, vals))

    def test_rounds_counter_exposed(self):
        t = prufer_random_tree(100, seed=12)
        st = SpatialTree.build(t)
        treefix_sum(st, np.ones(100, dtype=np.int64), seed=13)
        assert st.last_contraction_rounds >= 1


class TestAnalysisHelpers:
    def test_distance_profile_monotone_envelope(self):
        gaps = [1, 4, 16, 64]
        prof = distance_profile("hilbert", 32, gaps, seed=1)
        # worst distance grows with the gap for a distance-bound curve
        assert prof[0] <= prof[-1]
        assert (prof >= 1).all()

    def test_empirical_alpha_fields(self):
        est = empirical_alpha("hilbert", 16, seed=2)
        assert est.curve == "hilbert"
        assert est.samples > 0
        assert 1 <= est.worst_j <= 255
        # the worst pair actually attains the reported ratio
        c = get_curve("hilbert")
        d = int(c.pairwise_distance(est.worst_i, est.worst_i + est.worst_j, 16)[0])
        assert abs(d / np.sqrt(est.worst_j) - est.alpha_hat) < 1e-9

    def test_distance_profile_ignores_out_of_range_gaps(self):
        prof = distance_profile("hilbert", 4, [1, 1000], seed=3)
        assert prof[1] == 0
