"""Adversarial tests for the persistent plan store.

Every way an artifact can be wrong maps to a *typed* error — truncation
and bit-flips to :class:`PlanIntegrityError`, format drift to
:class:`PlanSchemaError`, renamed/mismatched artifacts to
:class:`PlanKeyError`, absence to :class:`PlanNotFoundError` — and a
half-written artifact is never observable (writes are temp-file +
``os.replace`` atomic). The LRU memory layer extends the machine's
plan-cache counting surface; its hit/miss/eviction books and the
machine-level :class:`PlanCache` family accounting get regression
coverage here.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import (
    PlanIntegrityError,
    PlanKeyError,
    PlanNotFoundError,
    PlanSchemaError,
)
from repro.machine.machine import PlanCache, SpatialMachine
from repro.machine.routing import bitonic_sort
from repro.plans import (
    MAGIC,
    LRUPlanCache,
    PlanStore,
    load_plan,
    read_plan_header,
    record,
    save_plan,
)


@pytest.fixture
def plan():
    return record("sort", n=12, seed=3, shape="uniform").plan


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "plans", capacity=2)


# --------------------------------------------------------------------------- #
# artifact integrity
# --------------------------------------------------------------------------- #


def test_roundtrip_identity(plan, store):
    path = store.put(plan)
    loaded = load_plan(path, expected_key=plan.key)
    assert loaded.key == plan.key
    assert loaded.totals == plan.totals
    assert loaded.seed == plan.seed
    assert loaded.speculative == plan.speculative
    assert len(loaded.ops) == len(plan.ops)
    for name in plan.results:
        np.testing.assert_array_equal(loaded.results[name], plan.results[name])


def test_missing_artifact(store, plan):
    with pytest.raises(PlanNotFoundError):
        store.get(("sort", 999, "hilbert", "uniform"))


def test_truncated_artifact_rejected(plan, store):
    path = store.put(plan)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(PlanIntegrityError):
        load_plan(path)


def test_truncated_header_rejected(plan, store):
    path = store.put(plan)
    path.write_bytes(path.read_bytes()[: len(MAGIC) + 10])
    with pytest.raises(PlanIntegrityError):
        load_plan(path)


def test_bad_magic_rejected(plan, store):
    path = store.put(plan)
    data = bytearray(path.read_bytes())
    data[:4] = b"EVIL"
    path.write_bytes(bytes(data))
    with pytest.raises(PlanIntegrityError):
        load_plan(path)


@pytest.mark.parametrize("offset_frac", [0.3, 0.6, 0.9])
def test_bitflipped_payload_rejected(plan, store, offset_frac):
    path = store.put(plan)
    data = bytearray(path.read_bytes())
    header_end = data.index(b"\n", len(MAGIC)) + 1
    pos = header_end + int((len(data) - header_end) * offset_frac)
    data[pos] ^= 0x40
    path.write_bytes(bytes(data))
    with pytest.raises(PlanIntegrityError):
        load_plan(path)


def test_trailing_garbage_rejected(plan, store):
    path = store.put(plan)
    path.write_bytes(path.read_bytes() + b"\x00garbage")
    with pytest.raises(PlanIntegrityError):
        load_plan(path)


def _rewrite_header(path, mutate):
    data = path.read_bytes()
    header_end = data.index(b"\n", len(MAGIC))
    header = json.loads(data[len(MAGIC):header_end].decode())
    mutate(header)
    path.write_bytes(
        MAGIC + json.dumps(header, sort_keys=True).encode() + data[header_end:]
    )


def test_schema_bump_rejected(plan, store):
    path = store.put(plan)
    _rewrite_header(path, lambda h: h.update(schema="repro.workload-plan/v999"))
    with pytest.raises(PlanSchemaError):
        load_plan(path)


def test_wrong_key_rejected(plan, store):
    path = store.put(plan)
    other = ("treefix", plan.n, plan.curve, "prufer")
    # renamed onto the wrong slot: the embedded key defends the lookup
    target = store.path_for(other)
    target.write_bytes(path.read_bytes())
    with pytest.raises(PlanKeyError):
        load_plan(target, expected_key=other)
    with pytest.raises(PlanKeyError):
        store.get(other)


def test_header_payload_key_disagreement_rejected(plan, store):
    path = store.put(plan)
    # forge the *header* key while keeping the payload (and its hash) intact:
    # the decoded plan's own key must still betray the forgery
    forged = ("sort", plan.n, plan.curve, "sorted")
    _rewrite_header(path, lambda h: h.update(key=list(forged)))
    with pytest.raises(PlanIntegrityError):
        load_plan(path, expected_key=forged)


def test_headers_listable_without_decoding(plan, store):
    store.put(plan)
    rows = store.ls()
    assert len(rows) == 1
    assert rows[0]["key"] == plan.key
    assert rows[0]["nbytes"] > 0
    header = read_plan_header(store.path_for(plan.key))
    assert header["schema"] == plan.schema


def test_corrupt_artifact_listed_not_fatal(plan, store):
    store.put(plan)
    bad = store.root / "zz-bad.plan"
    bad.write_bytes(b"not a plan at all")
    rows = store.ls()
    assert len(rows) == 2
    assert any("error" in r for r in rows)


# --------------------------------------------------------------------------- #
# atomicity and gc
# --------------------------------------------------------------------------- #


def test_concurrent_writers_never_expose_partial_artifacts(store):
    """Hammer one slot from several writer threads while a reader loads:
    every load sees a complete, integrity-clean artifact."""
    plans = [record("sort", n=12, seed=s, shape="uniform").plan for s in range(3)]
    key = plans[0].key
    save_plan(plans[0], store.path_for(key))  # slot exists before readers start
    errors: list[BaseException] = []
    stop = threading.Event()

    def writer(p):
        while not stop.is_set():
            try:
                save_plan(p, store.path_for(key))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
                return

    threads = [threading.Thread(target=writer, args=(p,)) for p in plans]
    for t in threads:
        t.start()
    try:
        seeds = set()
        for _ in range(50):
            loaded = load_plan(store.path_for(key), expected_key=key)
            seeds.add(loaded.seed)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors
    assert seeds <= {0, 1, 2}
    assert not list(store.root.glob("*.tmp"))  # no temp droppings left behind


def test_gc_respects_size_budget(tmp_path):
    store = PlanStore(tmp_path / "plans", capacity=8)
    import time

    paths = []
    for n in (8, 12, 16):
        res = record("sort", n=n, seed=1, shape="uniform", store=store)
        paths.append(res.path)
        time.sleep(0.02)  # distinct mtimes → deterministic oldest-first order
    total = store.total_bytes()
    smallest_two = sum(p.stat().st_size for p in paths[1:])
    deleted = store.gc(max_bytes=smallest_two)
    assert deleted == [paths[0]]  # oldest goes first
    assert store.total_bytes() <= smallest_two
    with pytest.raises(PlanNotFoundError):
        store.get(("sort", 8, "hilbert", "uniform"))
    assert store.gc(max_bytes=total) == []  # already under budget: no-op
    store.gc(max_bytes=0)
    assert store.total_bytes() == 0


# --------------------------------------------------------------------------- #
# the LRU memory layer and the machine PlanCache counting surface
# --------------------------------------------------------------------------- #


def test_store_memory_layer_counts_hits_misses(store, plan):
    store.put(plan)
    key = plan.key
    assert store.get(key) is plan  # memory hit
    assert store.memory.hits.get("sort") == 1
    fresh = PlanStore(store.root, capacity=2)
    loaded = fresh.get(key)  # disk hit = memory miss
    assert fresh.memory.misses.get("sort") == 1
    assert loaded.totals == plan.totals
    fresh.get(key)
    assert fresh.memory.hits.get("sort") == 1


def test_lru_eviction_counts_per_family(tmp_path):
    store = PlanStore(tmp_path / "plans", capacity=2)
    for n in (8, 12, 16):
        record("sort", n=n, seed=1, shape="uniform", store=store)
    assert len(store.memory) == 2
    assert store.memory.evictions.get("sort") == 1
    # the evicted plan reloads from disk (an honest miss), evicting again
    store.get(("sort", 8, "hilbert", "uniform"))
    assert store.memory.misses.get("sort") == 1
    assert store.memory.evictions.get("sort") == 2


def test_lru_recency_refresh_on_lookup(tmp_path):
    cache = LRUPlanCache(capacity=2)
    cache[("a", 1)] = "A"
    cache[("b", 1)] = "B"
    assert cache.lookup(("a", 1)) == "A"  # refreshes a's recency
    cache[("c", 1)] = "C"
    assert ("a", 1) in cache and ("b", 1) not in cache
    assert cache.evictions == {"b": 1}


def test_plan_cache_family_accounting_regression():
    """The machine's PlanCache counts a miss on first build, hits only on
    genuine reuse, and the books survive reset_costs (the cache itself is
    placement-keyed, not cost-keyed)."""
    m = SpatialMachine(12, engine="batched")
    keys = np.arange(12, dtype=np.int64)[::-1].copy()
    bitonic_sort(m, keys)
    assert m.plan_cache.misses.get("sort_network") == 1
    assert m.plan_cache.hits.get("sort_network") is None
    m.reset_costs()
    bitonic_sort(m, keys)
    assert m.plan_cache.hits.get("sort_network") == 1
    assert m.plan_cache.misses.get("sort_network") == 1
    # a different machine must not inherit the plan or the books
    m2 = SpatialMachine(12, engine="batched")
    bitonic_sort(m2, keys)
    assert m2.plan_cache.misses.get("sort_network") == 1
    assert m2.plan_cache.hits.get("sort_network") is None


def test_plan_cache_count_and_lookup_families():
    cache = PlanCache()
    assert cache.lookup(("fam", 1, 2)) is None
    cache[("fam", 1, 2)] = object()
    assert cache.lookup(("fam", 1, 2)) is not None
    cache.count("external", hit=True)
    assert cache.misses == {"fam": 1}
    assert cache.hits == {"fam": 1, "external": 1}
    # string keys are their own family; a stored None counts as a hit
    cache["plain"] = None
    assert cache.lookup("plain") is None  # indistinguishable from miss by value…
    assert cache.hits.get("plain") == 1  # …but counted as the hit it is


# --------------------------------------------------------------------------- #
# gc --dry-run and warm-boot preloading
# --------------------------------------------------------------------------- #


def test_gc_dry_run_lists_without_deleting(tmp_path):
    store = PlanStore(tmp_path / "plans", capacity=8)
    import time

    paths = []
    for n in (8, 12, 16):
        res = record("sort", n=n, seed=1, shape="uniform", store=store)
        paths.append(res.path)
        time.sleep(0.02)
    before = store.total_bytes()
    smallest_two = sum(p.stat().st_size for p in paths[1:])
    would_delete = store.gc(max_bytes=smallest_two, dry_run=True)
    # same eviction decision as a real gc (oldest-first)…
    assert would_delete == [paths[0]]
    # …but nothing was touched: bytes, files, and the memory layer survive
    assert store.total_bytes() == before
    assert all(p.exists() for p in paths)
    assert store.get(("sort", 8, "hilbert", "uniform")) is not None
    # the real gc then deletes exactly what the dry run promised
    assert store.gc(max_bytes=smallest_two) == would_delete
    assert not paths[0].exists()


def test_gc_dry_run_under_budget_is_empty(tmp_path):
    store = PlanStore(tmp_path / "plans")
    record("sort", n=8, seed=1, shape="uniform", store=store)
    assert store.gc(max_bytes=store.total_bytes(), dry_run=True) == []


def test_preload_warms_memory_newest_first(tmp_path):
    store = PlanStore(tmp_path / "plans", capacity=8)
    import time

    for n in (8, 12, 16):
        record("sort", n=n, seed=1, shape="uniform", store=store)
        time.sleep(0.02)
    fresh = PlanStore(tmp_path / "plans", capacity=8)
    assert len(fresh.memory) == 0
    loaded = fresh.preload(limit=2)
    assert len(loaded) == 2
    # newest artifacts first, so a bounded LRU keeps the hottest plans
    assert loaded[0] == ("sort", 16, "hilbert", "uniform")
    assert loaded[1] == ("sort", 12, "hilbert", "uniform")
    # preloaded keys hit memory, not disk
    fresh.get(("sort", 16, "hilbert", "uniform"))
    assert fresh.memory.hits.get("sort") == 1


def test_preload_by_key_skips_missing_and_corrupt(tmp_path):
    store = PlanStore(tmp_path / "plans", capacity=8)
    res = record("sort", n=8, seed=1, shape="uniform", store=store)
    # corrupt a second artifact on disk
    res2 = record("sort", n=12, seed=1, shape="uniform", store=store)
    res2.path.write_bytes(b"garbage")
    fresh = PlanStore(tmp_path / "plans", capacity=8)
    loaded = fresh.preload([
        ("sort", 8, "hilbert", "uniform"),      # fine
        ("sort", 12, "hilbert", "uniform"),     # corrupt -> skipped
        ("sort", 999, "hilbert", "uniform"),    # missing -> skipped
    ])
    assert loaded == [("sort", 8, "hilbert", "uniform")]
    assert res.path.exists()
