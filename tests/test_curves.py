"""Unit and property tests for the space-filling curves (paper §II-B).

Covers: bijection and round-trip for every curve, continuity of the
continuous curves, the aligned property of the Hilbert curve (Lemma 4's
hypothesis), distance-bound constants (§III-B), registry behaviour, and the
exact small examples the paper draws (Fig. 2's Z-order grid).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves import (
    available_curves,
    empirical_alpha,
    get_curve,
    is_aligned_empirical,
    neighbor_step_distances,
    resolve_curve,
)
from repro.errors import GridSizeError, ValidationError

ALL_CURVES = available_curves()
CONTINUOUS = [c for c in ALL_CURVES if get_curve(c).continuous]
DISTANCE_BOUND = [c for c in ALL_CURVES if get_curve(c).distance_bound]


@pytest.mark.parametrize("name", ALL_CURVES)
class TestBijection:
    def test_roundtrip_small(self, name):
        c = get_curve(name)
        side = c.min_side(40)
        n = side * side
        d = np.arange(n)
        x, y = c.index_to_xy(d, side)
        assert np.array_equal(c.xy_to_index(x, y, side), d)

    def test_covers_grid(self, name):
        c = get_curve(name)
        side = c.min_side(40)
        x, y = c.index_to_xy(np.arange(side * side), side)
        cells = set(zip(x.tolist(), y.tolist()))
        assert len(cells) == side * side
        assert all(0 <= a < side and 0 <= b < side for a, b in cells)

    def test_roundtrip_larger_order(self, name):
        c = get_curve(name)
        side = c.min_side(40) * c.base  # one more recursion level
        d = np.linspace(0, side * side - 1, 500).astype(np.int64)
        x, y = c.index_to_xy(d, side)
        assert np.array_equal(c.xy_to_index(x, y, side), d)

    def test_out_of_range_index_rejected(self, name):
        c = get_curve(name)
        side = c.min_side(4)
        with pytest.raises(ValidationError):
            c.index_to_xy(np.array([side * side]), side)

    def test_bad_side_rejected(self, name):
        c = get_curve(name)
        with pytest.raises(GridSizeError):
            c.index_to_xy(np.array([0]), 5 if c.base == 2 else 4)

    def test_min_side_is_minimal(self, name):
        c = get_curve(name)
        for n in (1, 2, 5, 17, 100):
            side = c.min_side(n)
            assert side * side >= n
            smaller = side // c.base
            try:
                c.validate_side(smaller)
            except Exception:
                continue  # curve has a structural minimum side (e.g. Moore)
            if side > 1:
                assert smaller**2 < n


@pytest.mark.parametrize("name", CONTINUOUS)
def test_continuous_curves_step_distance_one(name):
    c = get_curve(name)
    side = c.min_side(200)
    steps = neighbor_step_distances(c, side)
    assert (steps == 1).all()


def test_zorder_is_not_continuous():
    steps = neighbor_step_distances("zorder", 8)
    assert steps.max() > 1
    assert (steps >= 1).all()


def test_rowmajor_wraps_are_long():
    steps = neighbor_step_distances("rowmajor", 8)
    # end-of-row wrap distance is side - 1 + 1 = side ... verify ≥ side-1
    assert steps.max() >= 7


class TestHilbertSpecifics:
    def test_first_cells_of_order_one(self):
        c = get_curve("hilbert")
        x, y = c.index_to_xy(np.arange(4), 2)
        cells = list(zip(x.tolist(), y.tolist()))
        # one continuous tour of the 2x2 grid starting at (0, 0)
        assert cells[0] == (0, 0)
        assert len(set(cells)) == 4

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_aligned_property(self, k):
        # every 4^k consecutive elements fit in a 2*2^k box (Lemma 4 input)
        assert is_aligned_empirical("hilbert", 16, k)

    def test_distance_bound_constant_below_published(self):
        est = empirical_alpha("hilbert", 32, seed=0)
        assert est.alpha_hat <= 3.0 + 1e-9, est

    def test_scalar_inputs_broadcast(self):
        c = get_curve("hilbert")
        x, y = c.index_to_xy(5, 4)
        assert x.shape == (1,)


class TestPeanoSpecifics:
    def test_order_one_serpentine(self):
        c = get_curve("peano")
        x, y = c.index_to_xy(np.arange(9), 3)
        assert (x[0], y[0]) == (0, 0)
        assert (x[-1], y[-1]) == (2, 2)

    def test_distance_bound_constant_below_published(self):
        est = empirical_alpha("peano", 27, seed=0)
        assert est.alpha_hat <= np.sqrt(10 + 2 / 3) + 1e-9, est

    def test_base_three_sides(self):
        c = get_curve("peano")
        assert c.min_side(10) == 9
        with pytest.raises(GridSizeError):
            c.validate_side(6)


class TestZOrderSpecifics:
    def test_paper_figure_2_grid(self):
        """The 16-element Z-order drawing of Fig. 2, row by row."""
        c = get_curve("zorder")
        x, y = c.index_to_xy(np.arange(16), 4)
        grid = np.empty((4, 4), dtype=int)
        grid[y, x] = np.arange(16)
        expected = np.array(
            [
                [0, 1, 4, 5],
                [2, 3, 6, 7],
                [8, 9, 12, 13],
                [10, 11, 14, 15],
            ]
        )
        assert np.array_equal(grid, expected)

    def test_not_distance_bound_ratio_grows(self):
        # the worst dist(i, i+1)/1 grows with the grid: compare two sizes
        small = empirical_alpha("zorder", 16, seed=0).alpha_hat
        large = empirical_alpha("zorder", 128, seed=0).alpha_hat
        assert large > small


@pytest.mark.parametrize("name", DISTANCE_BOUND)
def test_distance_bound_curves_alpha_flat_across_sizes(name):
    """alpha_hat must not grow with the grid side for distance-bound curves."""
    c = get_curve(name)
    sides = [c.min_side(64), c.min_side(64) * c.base]
    alphas = [empirical_alpha(c, s, seed=1).alpha_hat for s in sides]
    assert alphas[1] <= alphas[0] * 1.25 + 0.5


class TestRegistry:
    def test_known_curves_present(self):
        for expected in ("hilbert", "zorder", "peano", "rowmajor", "boustrophedon"):
            assert expected in ALL_CURVES

    def test_get_curve_unknown(self):
        with pytest.raises(ValidationError, match="unknown curve"):
            get_curve("does-not-exist")

    def test_resolve_curve_accepts_instance_and_name(self):
        c = get_curve("hilbert")
        assert resolve_curve(c) is c
        assert resolve_curve("hilbert").name == "hilbert"
        with pytest.raises(ValidationError):
            resolve_curve(42)


class TestBoustrophedon:
    def test_snake_rows(self):
        c = get_curve("boustrophedon")
        x, y = c.index_to_xy(np.arange(16), 4)
        assert list(x[:4]) == [0, 1, 2, 3]
        assert list(x[4:8]) == [3, 2, 1, 0]
        assert (y[:4] == 0).all() and (y[4:8] == 1).all()


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(ALL_CURVES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_random_points_roundtrip(name, seed):
    c = get_curve(name)
    side = c.min_side(100)
    rng = np.random.default_rng(seed)
    d = rng.integers(0, side * side, size=20)
    x, y = c.index_to_xy(d, side)
    assert np.array_equal(c.xy_to_index(x, y, side), d)


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(DISTANCE_BOUND),
    gap=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_distance_bound_holds(name, gap, seed):
    """dist(i, i+j) <= alpha * sqrt(j) for the published constants."""
    c = get_curve(name)
    side = c.min_side(256)
    n = side * side
    rng = np.random.default_rng(seed)
    i = rng.integers(0, n - gap, size=10)
    d = c.pairwise_distance(i, i + gap, side)
    assert (d <= c.alpha * np.sqrt(gap) + 2).all()
