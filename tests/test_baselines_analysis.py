"""Tests for the PRAM baselines (§II-A) and the analysis layer."""

import numpy as np
import pytest

from repro.analysis import bounds, fit_exponent, format_table, run_scaling
from repro.analysis.experiments import assert_exponent_between
from repro.analysis.reporting import format_series, render_curve, render_layout_grid
from repro.errors import ValidationError
from repro.layout import TreeLayout
from repro.spatial import pram_lca_batch, pram_list_ranking, pram_treefix
from repro.trees import (
    BinaryLiftingLCA,
    bottom_up_treefix,
    path_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
)


class TestPRAMListRanking:
    def test_correct_on_random_lists(self):
        rng = np.random.default_rng(0)
        for k in (1, 2, 7, 64, 200):
            perm = rng.permutation(k)
            succ = np.full(k, -1, dtype=np.int64)
            succ[perm[:-1]] = perm[1:]
            res = pram_list_ranking(succ)
            expect = np.empty(k, dtype=np.int64)
            expect[perm] = np.arange(k)
            assert np.array_equal(res.values, expect), k

    def test_energy_super_three_halves(self):
        es = []
        for k in (256, 2048):
            rng = np.random.default_rng(k)
            perm = rng.permutation(k)
            succ = np.full(k, -1, dtype=np.int64)
            succ[perm[:-1]] = perm[1:]
            es.append(pram_list_ranking(succ).energy)
        exponent = np.log(es[1] / es[0]) / np.log(2048 / 256)
        assert exponent >= 1.35  # Θ(n^{3/2} log n) up to boundary effects

    def test_steps_logarithmic(self):
        succ = np.concatenate([np.arange(1, 512), [-1]])
        res = pram_list_ranking(succ)
        assert res.steps == 9


class TestPRAMTreefix:
    def test_matches_reference(self, zoo_tree, rng):
        vals = rng.integers(-50, 50, size=zoo_tree.n)
        res = pram_treefix(zoo_tree, vals)
        assert np.array_equal(res.values, bottom_up_treefix(zoo_tree, vals))

    def test_single_vertex(self):
        res = pram_treefix(path_tree(1), np.array([9]))
        assert res.values[0] == 9 and res.energy == 0

    def test_values_shape_checked(self):
        with pytest.raises(ValidationError):
            pram_treefix(path_tree(3), np.zeros(4))

    def test_spatial_beats_pram_on_energy(self):
        """The §I-C headline: our treefix spends asymptotically less energy
        than the PRAM simulation on the same input."""
        from repro.spatial import SpatialTree
        from repro.spatial.treefix import treefix_sum

        n = 2048
        t = prufer_random_tree(n, seed=1)
        vals = np.ones(n, dtype=np.int64)
        st_ = SpatialTree.build(t)
        treefix_sum(st_, vals, seed=2)
        pram = pram_treefix(t, vals)
        assert pram.energy > 10 * st_.machine.energy


class TestPRAMLCA:
    def test_matches_reference(self, zoo_tree, rng):
        oracle = BinaryLiftingLCA(zoo_tree)
        qs = rng.integers(0, zoo_tree.n, size=(40, 2))
        res = pram_lca_batch(zoo_tree, qs[:, 0], qs[:, 1])
        assert np.array_equal(res.values, oracle.query_batch(qs[:, 0], qs[:, 1]))

    def test_star_and_path(self):
        for t in (star_tree(60), path_tree(60)):
            oracle = BinaryLiftingLCA(t)
            rng = np.random.default_rng(3)
            qs = rng.integers(0, 60, size=(30, 2))
            res = pram_lca_batch(t, qs[:, 0], qs[:, 1])
            assert np.array_equal(res.values, oracle.query_batch(qs[:, 0], qs[:, 1]))


class TestBounds:
    def test_monotone_in_n(self):
        for fn in (
            bounds.local_messaging_energy,
            bounds.treefix_energy,
            bounds.lca_energy,
            bounds.sort_energy,
            bounds.list_ranking_energy,
        ):
            assert fn(4096) > fn(256)

    def test_depth_bounds(self):
        assert bounds.treefix_depth(1024, bounded_degree=True) == 10
        assert bounds.treefix_depth(1024, bounded_degree=False) == 100
        assert bounds.lca_depth(1024) == 100

    def test_pram_simulation_formula(self):
        assert bounds.pram_simulation_energy(100, 400, 1) == 100 * (10 + 20)

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            bounds.treefix_energy(0)


class TestReporting:
    def test_format_table(self):
        rows = [{"n": 4, "e": 1.5}, {"n": 16, "e": 2.25}]
        out = format_table(rows)
        assert "n" in out and "16" in out and "2.25" in out

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series_with_normalizer(self):
        out = format_series("test", [4, 16], [8.0, 32.0], normalizer=lambda n: n)
        assert "value/bound" in out

    def test_fit_exponent_recovers_slope(self):
        ns = [64, 256, 1024, 4096]
        vals = [n**1.5 for n in ns]
        assert abs(fit_exponent(ns, vals) - 1.5) < 1e-9

    def test_fit_exponent_degenerate(self):
        assert np.isnan(fit_exponent([4], [2.0]))

    def test_render_layout_grid(self):
        layout = TreeLayout.build(path_tree(16))
        text = render_layout_grid(layout)
        assert "15" in text and len(text.splitlines()) == 4

    def test_render_layout_grid_too_large(self):
        layout = TreeLayout.build(path_tree(2000))
        assert "too large" in render_layout_grid(layout)

    def test_render_curve(self):
        from repro.curves import get_curve

        text = render_curve(get_curve("zorder"), 4)
        assert text.splitlines()[0].split() == ["0", "1", "4", "5"]

    def test_run_scaling_and_guardrail(self):
        result = run_scaling(
            "quadratic",
            [16, 64, 256],
            lambda n: {"energy": n * n, "depth": n, "messages": n},
        )
        assert_exponent_between(result, 1.9, 2.1)
        with pytest.raises(AssertionError):
            assert_exponent_between(result, 2.5, 3.0)
        table = result.table(energy_bound=lambda n: n * n)
        assert "E/bound" in table
