"""Tests for the §V contraction-based treefix sums: correctness against the
sequential references on every zoo shape, both directions, both messaging
modes, alternative operators, cost envelopes, and memory discipline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.spatial import SpatialTree
from repro.spatial.treefix import top_down_treefix, treefix_sum
from repro.trees import (
    bottom_up_treefix as ref_bottom_up,
    path_tree,
    prufer_random_tree,
    random_attachment_tree,
    random_binary_tree,
    star_tree,
    top_down_treefix as ref_top_down,
)


@pytest.mark.parametrize("mode", ["direct", "virtual"])
class TestCorrectness:
    def test_bottom_up_zoo(self, zoo_tree, rng, mode):
        vals = rng.integers(-100, 100, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        got = treefix_sum(st_, vals, seed=1)
        assert np.array_equal(got, ref_bottom_up(zoo_tree, vals))

    def test_top_down_zoo(self, zoo_tree, rng, mode):
        vals = rng.integers(-100, 100, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        got = top_down_treefix(st_, vals, seed=1)
        assert np.array_equal(got, ref_top_down(zoo_tree, vals))

    def test_different_seeds_same_answer(self, mode):
        """Las Vegas: randomness affects cost, never the result."""
        t = prufer_random_tree(200, seed=5)
        vals = np.arange(200)
        results = [
            treefix_sum(SpatialTree.build(t, mode=mode), vals, seed=s)
            for s in (1, 2, 3)
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])


class TestOperators:
    def test_max(self, rng):
        t = random_attachment_tree(150, seed=2)
        vals = rng.integers(-1000, 1000, size=150)
        st_ = SpatialTree.build(t)
        lo = np.int64(np.iinfo(np.int64).min)
        got = treefix_sum(st_, vals, op=np.maximum, identity=lo, seed=4)
        assert np.array_equal(got, ref_bottom_up(t, vals, op=np.maximum))

    def test_min_top_down(self, rng):
        t = random_attachment_tree(150, seed=3)
        vals = rng.integers(-1000, 1000, size=150)
        st_ = SpatialTree.build(t)
        hi = np.int64(np.iinfo(np.int64).max)
        got = top_down_treefix(st_, vals, op=np.minimum, identity=hi, seed=4)
        assert np.array_equal(got, ref_top_down(t, vals, op=np.minimum))

    def test_bitwise_or(self, rng):
        t = random_binary_tree(100, seed=4)
        vals = rng.integers(0, 2**20, size=100)
        st_ = SpatialTree.build(t)
        got = treefix_sum(st_, vals, op=np.bitwise_or, identity=0, seed=5)
        assert np.array_equal(got, ref_bottom_up(t, vals, op=np.bitwise_or))

    def test_float_values_sum(self, rng):
        t = random_attachment_tree(200, seed=21)
        vals = rng.random(200) * 10 - 5
        st_ = SpatialTree.build(t)
        got = treefix_sum(st_, vals, identity=0.0, seed=22)
        # float accumulation order differs between spatial and sequential
        assert np.allclose(got, ref_bottom_up(t, vals))
        assert got.dtype == np.float64

    def test_float_values_max_and_top_down(self, rng):
        t = random_attachment_tree(150, seed=23)
        vals = rng.random(150)
        got = treefix_sum(
            SpatialTree.build(t), vals, op=np.maximum, identity=-np.inf, seed=24
        )
        assert np.allclose(got, ref_bottom_up(t, vals, op=np.maximum))
        td = top_down_treefix(SpatialTree.build(t), vals, identity=0.0, seed=25)
        assert np.allclose(td, ref_top_down(t, vals))

    def test_unsupported_dtype_rejected(self):
        st_ = SpatialTree.build(path_tree(4))
        with pytest.raises(ValidationError, match="values"):
            treefix_sum(st_, np.zeros(4, dtype=complex))

    def test_subtree_sizes_via_ones(self, zoo_tree):
        st_ = SpatialTree.build(zoo_tree)
        got = treefix_sum(st_, np.ones(zoo_tree.n, dtype=np.int64), seed=6)
        assert np.array_equal(got, zoo_tree.subtree_sizes())

    def test_depths_via_top_down_ones(self, zoo_tree):
        st_ = SpatialTree.build(zoo_tree)
        got = top_down_treefix(st_, np.ones(zoo_tree.n, dtype=np.int64), seed=6)
        assert np.array_equal(got, zoo_tree.depths() + 1)


class TestCosts:
    def test_energy_n_log_n_envelope(self):
        """Lemma 11/12: energy / (n log n) stays bounded across sizes."""
        per = []
        for n in (1024, 8192):
            t = prufer_random_tree(n, seed=7)
            st_ = SpatialTree.build(t, mode="virtual")
            treefix_sum(st_, np.ones(n, dtype=np.int64), seed=8)
            per.append(st_.machine.energy / (n * np.log2(n)))
        assert per[1] <= per[0] * 1.5

    def test_depth_polylog_unbounded(self):
        n = 8192
        t = prufer_random_tree(n, seed=9)
        st_ = SpatialTree.build(t, mode="virtual")
        treefix_sum(st_, np.ones(n, dtype=np.int64), seed=10)
        assert st_.machine.depth <= 10 * np.log2(n) ** 2

    def test_depth_near_log_bounded_degree(self):
        n = 8192
        t = random_binary_tree(n, seed=11)
        st_ = SpatialTree.build(t, mode="direct")
        treefix_sum(st_, np.ones(n, dtype=np.int64), seed=12)
        # Lemma 11: O(log n) — generous constant for random-mate rounds
        assert st_.machine.depth <= 40 * np.log2(n)

    def test_memory_budget_respected(self):
        """The contraction state must fit the constant register budget."""
        t = prufer_random_tree(300, seed=13)
        st_ = SpatialTree.build(t)
        treefix_sum(st_, np.ones(300, dtype=np.int64), seed=14)
        assert st_.machine.registers.peak <= st_.machine.registers.budget
        assert st_.machine.registers.live == 0  # all registers released

    def test_registers_released_on_error(self):
        t = path_tree(5)
        st_ = SpatialTree.build(t)
        with pytest.raises(ValidationError):
            treefix_sum(st_, np.ones(6, dtype=np.int64))
        # a second run must not collide with leaked registers
        treefix_sum(st_, np.ones(5, dtype=np.int64), seed=1)

    def test_phase_attribution(self):
        t = random_attachment_tree(100, seed=15)
        st_ = SpatialTree.build(t)
        treefix_sum(st_, np.ones(100, dtype=np.int64), seed=16)
        phases = st_.machine.ledger.summary()
        assert "treefix_bottom_up_contract" in phases
        assert "treefix_bottom_up_expand" in phases
        assert phases["treefix_bottom_up_contract"]["energy"] > 0


class TestEdgeCases:
    def test_single_vertex(self):
        st_ = SpatialTree.build(path_tree(1))
        assert treefix_sum(st_, np.array([42]), seed=0)[0] == 42
        st2 = SpatialTree.build(path_tree(1))
        assert top_down_treefix(st2, np.array([42]), seed=0)[0] == 42

    def test_two_vertices(self):
        st_ = SpatialTree.build(path_tree(2))
        got = treefix_sum(st_, np.array([10, 5]), seed=0)
        assert list(got) == [15, 5]

    def test_pure_path_compress_only(self):
        n = 257
        st_ = SpatialTree.build(path_tree(n))
        got = treefix_sum(st_, np.ones(n, dtype=np.int64), seed=3)
        assert np.array_equal(got, np.arange(n, 0, -1))

    def test_pure_star_rake_only(self):
        n = 257
        st_ = SpatialTree.build(star_tree(n), mode="virtual")
        vals = np.arange(n)
        got = treefix_sum(st_, vals, seed=3)
        assert got[0] == vals.sum()
        assert np.array_equal(got[1:], vals[1:])

    def test_values_shape_checked(self):
        st_ = SpatialTree.build(path_tree(4))
        with pytest.raises(ValidationError):
            treefix_sum(st_, np.zeros(5))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=120), seed=st.integers(0, 400))
def test_property_spatial_matches_reference(n, seed):
    t = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, size=n)
    st_ = SpatialTree.build(t)
    assert np.array_equal(treefix_sum(st_, vals, seed=seed), ref_bottom_up(t, vals))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=1, max_value=100), seed=st.integers(0, 400))
def test_property_top_down_plus_bottom_up_identity(n, seed):
    """sum(root path) + sum(subtree) - val(v) = sum over (ancestors ∪
    descendants) — a cross-check tying the two directions together."""
    t = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    vals = rng.integers(-20, 20, size=n)
    bu = treefix_sum(SpatialTree.build(t), vals, seed=seed)
    td = top_down_treefix(SpatialTree.build(t), vals, seed=seed)
    combined = bu + td - vals
    # verify on a few vertices against brute force
    check = np.random.default_rng(seed + 2).integers(0, n, size=min(5, n))
    for v in check:
        manual = sum(
            vals[u]
            for u in range(n)
            if t.is_ancestor(int(v), u) or t.is_ancestor(u, int(v))
        )
        assert combined[v] == manual
