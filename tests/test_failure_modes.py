"""Failure injection: broken randomness, exhausted budgets, misuse.

Las Vegas algorithms must fail *loudly* (ConvergenceError) when their
randomness is sabotaged, never loop forever or return wrong answers; the
memory model must reject over-budget algorithms; and the error hierarchy
must behave as documented.
"""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    MachineStateError,
    MemoryBudgetError,
    ReproError,
    TreeStructureError,
    ValidationError,
)
from repro.machine import SpatialMachine
from repro.spatial import SpatialTree, list_rank
from repro.spatial.treefix import treefix_sum
from repro.trees import path_tree, random_attachment_tree


class AllHeadsRng:
    """A sabotaged duck-typed generator: every coin flip comes up heads.

    Random-mate selection requires a heads-over-tails boundary, so nothing
    is ever selected and contraction can make no progress. ``resolve_rng``
    accepts any object with ``random``/``integers``, which is exactly this
    testing seam.
    """

    def random(self, size=None, **kwargs):
        # always below any bias threshold → always "heads"
        return np.zeros(size) if size is not None else 0.0

    def integers(self, low, high=None, size=None, **kwargs):
        return np.ones(size, dtype=np.int64) if size is not None else 1


class TestSabotagedRandomness:
    def test_list_ranking_raises_convergence_error(self):
        # all-heads coins select nobody (selection needs succ to be tails)
        succ = np.concatenate([np.arange(1, 64), [-1]])
        m = SpatialMachine(64)
        with pytest.raises(ConvergenceError, match="did not contract"):
            list_rank(m, succ, seed=AllHeadsRng(), max_rounds=50)

    def test_treefix_raises_convergence_error_on_path(self):
        # a long path needs compress; all-heads coins never select
        tree = path_tree(128)
        st = SpatialTree.build(tree)
        with pytest.raises(ConvergenceError, match="contraction exceeded"):
            treefix_sum(st, np.ones(128, dtype=np.int64), seed=AllHeadsRng(), max_rounds=30)

    def test_registers_released_after_convergence_failure(self):
        tree = path_tree(64)
        st = SpatialTree.build(tree)
        with pytest.raises(ConvergenceError):
            treefix_sum(st, np.ones(64, dtype=np.int64), seed=AllHeadsRng(), max_rounds=10)
        assert st.machine.registers.live == 0
        # and a healthy run afterwards succeeds
        out = treefix_sum(st, np.ones(64, dtype=np.int64), seed=1)
        assert out[0] == 64

    def test_star_rakes_even_with_bad_coins(self):
        """Rake does not involve coins, so a star contracts regardless."""
        from repro.trees import star_tree

        st = SpatialTree.build(star_tree(64))
        out = treefix_sum(st, np.ones(64, dtype=np.int64), seed=AllHeadsRng())
        assert out[0] == 64


class TestBudgets:
    def test_treefix_exceeds_tiny_register_budget(self):
        tree = random_attachment_tree(32, seed=1)
        st = SpatialTree.build(tree, budget=4)
        with pytest.raises(MemoryBudgetError):
            treefix_sum(st, np.ones(32, dtype=np.int64), seed=2)

    def test_budget_error_is_repro_error(self):
        assert issubclass(MemoryBudgetError, ReproError)
        assert issubclass(ConvergenceError, ReproError)
        assert issubclass(MachineStateError, ReproError)

    def test_validation_error_is_value_error(self):
        # callers can catch either the library base or ValueError
        assert issubclass(ValidationError, ValueError)
        assert issubclass(TreeStructureError, ValidationError)


class TestMisuse:
    def test_treefix_bad_coin_bias(self):
        st = SpatialTree.build(path_tree(8))
        with pytest.raises(ValidationError, match="coin_bias"):
            treefix_sum(st, np.ones(8, dtype=np.int64), coin_bias=0.0)
        with pytest.raises(ValidationError, match="coin_bias"):
            treefix_sum(st, np.ones(8, dtype=np.int64), coin_bias=1.0)

    def test_list_rank_bad_coin_bias(self):
        m = SpatialMachine(4)
        with pytest.raises(ValidationError, match="coin_bias"):
            list_rank(m, np.array([1, 2, 3, -1]), coin_bias=2.0)

    def test_machine_layout_mismatch(self):
        from repro.layout import TreeLayout

        layout = TreeLayout.build(path_tree(16))
        other = SpatialMachine(8)
        with pytest.raises(ValidationError):
            SpatialTree(layout, machine=other)

    def test_spatial_tree_bad_mode(self):
        from repro.layout import TreeLayout

        layout = TreeLayout.build(path_tree(4))
        with pytest.raises(ValidationError, match="mode"):
            SpatialTree(layout, mode="warp")

    def test_send_after_tampering_rejected(self):
        st = SpatialTree.build(path_tree(4))
        with pytest.raises(ValidationError):
            st.send([0], [99])
