"""Tests for the derived operations (repro.spatial.applications), the
hot-vertex splitting of §VI, forests, and dynamic updates (§VII)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import brute_lca

from repro.errors import ValidationError
from repro.spatial import (
    DynamicLightFirstTree,
    SpatialTree,
    lca_batch_balanced,
    mark_ancestors,
    path_sums,
    split_hot_vertices,
    subtree_statistics,
    tree_distances,
    vertex_depths,
)
from repro.spatial.applications import subtree_sizes as app_subtree_sizes
from repro.trees import (
    BinaryLiftingLCA,
    combine_forest,
    path_tree,
    random_attachment_tree,
    split_forest_values,
    star_tree,
)


def brute_path_vertices(tree, u, v):
    w = brute_lca(tree, u, v)
    path = []
    x = u
    while x != w:
        path.append(x)
        x = int(tree.parents[x])
    path.append(w)
    x = v
    while x != w:
        path.append(x)
        x = int(tree.parents[x])
    return path


class TestDerivedOperations:
    def test_vertex_depths(self, zoo_tree):
        st_ = SpatialTree.build(zoo_tree)
        assert np.array_equal(vertex_depths(st_, seed=1), zoo_tree.depths())

    def test_subtree_sizes(self, zoo_tree):
        st_ = SpatialTree.build(zoo_tree)
        assert np.array_equal(app_subtree_sizes(st_, seed=1), zoo_tree.subtree_sizes())

    def test_tree_distances(self, zoo_tree, rng):
        st_ = SpatialTree.build(zoo_tree)
        us = rng.integers(0, zoo_tree.n, size=20)
        vs = rng.integers(0, zoo_tree.n, size=20)
        got = tree_distances(st_, us, vs, seed=2)
        for g, u, v in zip(got, us, vs):
            assert g == len(brute_path_vertices(zoo_tree, int(u), int(v))) - 1

    def test_path_sums(self, zoo_tree, rng):
        st_ = SpatialTree.build(zoo_tree)
        vals = rng.integers(-30, 30, size=zoo_tree.n)
        us = rng.integers(0, zoo_tree.n, size=15)
        vs = rng.integers(0, zoo_tree.n, size=15)
        got = path_sums(st_, vals, us, vs, seed=3)
        for g, u, v in zip(got, us, vs):
            path = brute_path_vertices(zoo_tree, int(u), int(v))
            assert g == vals[path].sum()

    def test_path_sum_u_equals_v(self):
        t = path_tree(10)
        st_ = SpatialTree.build(t)
        vals = np.arange(10)
        got = path_sums(st_, vals, np.array([4]), np.array([4]), seed=0)
        assert got[0] == 4

    def test_subtree_statistics(self, zoo_tree, rng):
        st_ = SpatialTree.build(zoo_tree)
        vals = rng.integers(-100, 100, size=zoo_tree.n)
        stats = subtree_statistics(st_, vals, seed=4)
        # verify on a handful of vertices with explicit descendant sets
        for v in rng.integers(0, zoo_tree.n, size=5):
            desc = [u for u in range(zoo_tree.n) if zoo_tree.is_ancestor(int(v), u)]
            assert stats.total[v] == vals[desc].sum()
            assert stats.minimum[v] == vals[desc].min()
            assert stats.maximum[v] == vals[desc].max()
            assert stats.size[v] == len(desc)
            leaf_cnt = sum(1 for u in desc if len(zoo_tree.children(u)) == 0)
            assert stats.leaves[v] == leaf_cnt

    def test_mark_ancestors(self, rng):
        t = random_attachment_tree(150, seed=5)
        st_ = SpatialTree.build(t)
        marked = np.zeros(150, dtype=bool)
        marked[rng.integers(0, 150, size=5)] = True
        got = mark_ancestors(st_, marked, seed=6)
        for v in range(150):
            expect = False
            x = v
            while x >= 0:
                if marked[x]:
                    expect = True
                    break
                x = int(t.parents[x])
            assert got[v] == expect

    def test_shape_validation(self):
        st_ = SpatialTree.build(path_tree(4))
        with pytest.raises(ValidationError):
            path_sums(st_, np.zeros(5), [0], [1])
        with pytest.raises(ValidationError):
            mark_ancestors(st_, np.zeros(5, dtype=bool))


class TestHotVertexSplitting:
    def test_split_bounds_query_count(self):
        t = random_attachment_tree(100, seed=7)
        us = np.zeros(200, dtype=np.int64)  # vertex 0 is extremely hot
        vs = np.arange(100).repeat(2)
        new_tree, new_us, new_vs, owner = split_hot_vertices(t, us, vs, max_queries_per_vertex=4)
        counts = np.bincount(np.concatenate([new_us, new_vs]), minlength=new_tree.n)
        assert counts.max() <= 2 * 4  # each endpoint slot bounded
        assert new_tree.n > t.n

    def test_owner_maps_back(self):
        t = random_attachment_tree(100, seed=8)
        us = np.zeros(50, dtype=np.int64)
        vs = np.arange(50, 100, dtype=np.int64)
        new_tree, new_us, new_vs, owner = split_hot_vertices(t, us, vs)
        assert np.array_equal(np.unique(owner), np.arange(t.n))
        assert (owner[new_us] == us).all()
        assert (owner[new_vs] == vs).all()

    def test_balanced_lca_correct_under_hot_batch(self):
        t = random_attachment_tree(120, seed=9)
        rng = np.random.default_rng(1)
        us = np.full(80, 7, dtype=np.int64)
        vs = rng.integers(0, 120, size=80)
        answers, st_ = lca_batch_balanced(t, us, vs, seed=10)
        expect = BinaryLiftingLCA(t).query_batch(us, vs)
        assert np.array_equal(answers, expect)

    def test_no_hot_vertices_is_identity_shape(self):
        t = path_tree(20)
        us = np.arange(10, dtype=np.int64)
        vs = np.arange(10, 20, dtype=np.int64)
        new_tree, new_us, new_vs, owner = split_hot_vertices(t, us, vs, max_queries_per_vertex=4)
        assert new_tree.n == t.n
        assert np.array_equal(owner, np.arange(t.n))

    def test_split_star_center(self):
        t = star_tree(60)
        rng = np.random.default_rng(2)
        us = np.zeros(100, dtype=np.int64)
        vs = rng.integers(1, 60, size=100)
        answers, _ = lca_batch_balanced(t, us, vs, seed=11, max_queries_per_vertex=2)
        assert (answers == 0).all()


class TestForest:
    def test_combined_structure(self):
        trees = [path_tree(5), star_tree(4), random_attachment_tree(10, seed=1)]
        idx = combine_forest(trees)
        assert idx.tree.n == 20
        assert idx.tree.root == 0
        # each tree's block is a valid subtree under the super-root
        for t_i, (off, size) in enumerate(zip(idx.offsets, idx.sizes)):
            assert idx.tree.parents[off] == 0
            assert size == trees[t_i].n

    def test_id_mapping_roundtrip(self):
        trees = [path_tree(5), star_tree(7)]
        idx = combine_forest(trees)
        sup = idx.to_super(1, np.array([0, 3]))
        t_back, local = idx.to_local(sup)
        assert (t_back == 1).all()
        assert np.array_equal(local, [0, 3])
        t0, l0 = idx.to_local(np.array([0]))
        assert t0[0] == -1 and l0[0] == -1

    def test_treefix_over_forest_matches_per_tree(self, rng):
        from repro.trees import bottom_up_treefix

        trees = [random_attachment_tree(40, seed=s) for s in range(3)]
        idx = combine_forest(trees)
        vals = rng.integers(0, 50, size=idx.tree.n)
        vals[0] = 0  # super-root carries the identity
        st_ = SpatialTree.build(idx.tree)
        sums = st_.treefix_sum(vals, seed=12)
        per_tree = split_forest_values(idx, sums)
        per_vals = split_forest_values(idx, vals)
        for t, s, v in zip(trees, per_tree, per_vals):
            assert np.array_equal(s, bottom_up_treefix(t, v))

    def test_empty_forest_rejected(self):
        with pytest.raises(ValidationError):
            combine_forest([])

    def test_split_values_shape_checked(self):
        idx = combine_forest([path_tree(3)])
        with pytest.raises(ValidationError):
            split_forest_values(idx, np.zeros(3))


class TestDynamicUpdates:
    def test_appends_degrade_then_rebuild_restores(self):
        rng = np.random.default_rng(3)
        base = random_attachment_tree(200, seed=13)
        dt = DynamicLightFirstTree(base, capacity=600)
        e0 = dt.mean_edge_distance()
        for _ in range(200):
            dt.insert_leaf(int(rng.integers(0, dt.n)))
        e1 = dt.mean_edge_distance()
        dt.rebuild()
        e2 = dt.mean_edge_distance()
        assert e1 > 2 * e0       # appended leaves are far from parents
        assert e2 < e1           # rebuild restores locality
        assert dt.rebuild_count == 1
        assert dt.rebuild_energy > 0

    def test_auto_rebuild_triggers(self):
        dt = DynamicLightFirstTree(
            path_tree(50), capacity=200, auto_rebuild_fraction=0.2
        )
        for _ in range(30):
            dt.insert_leaf(0)
        assert dt.rebuild_count >= 1
        assert dt.appended_since_rebuild < 30

    def test_tree_snapshot_valid(self):
        dt = DynamicLightFirstTree(star_tree(20), capacity=100)
        new = dt.insert_leaves([0, 1, 2])
        t = dt.tree()
        assert t.n == 23
        assert t.parents[new[0]] == 0
        # snapshot trees validate (reachability)
        from repro.trees import Tree

        Tree(t.parents.copy())

    def test_capacity_enforced(self):
        dt = DynamicLightFirstTree(path_tree(4), capacity=5)
        dt.insert_leaf(0)
        with pytest.raises(ValidationError):
            dt.insert_leaf(0)

    def test_layout_is_light_first_after_rebuild(self):
        from repro.layout import is_light_first

        dt = DynamicLightFirstTree(random_attachment_tree(60, seed=14), capacity=200)
        for _ in range(40):
            dt.insert_leaf(0)
        dt.rebuild()
        layout = dt.layout()
        assert is_light_first(dt.tree(), layout.order)

    def test_algorithms_run_on_snapshot(self):
        dt = DynamicLightFirstTree(random_attachment_tree(50, seed=15), capacity=150)
        for _ in range(20):
            dt.insert_leaf(int(np.random.default_rng(4).integers(0, 50)))
        dt.rebuild()
        st_ = SpatialTree.build(dt.tree())
        sizes = st_.treefix_sum(np.ones(dt.n, dtype=np.int64), seed=16)
        assert sizes[dt.tree().root] == dt.n


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=80), seed=st.integers(0, 200))
def test_property_distances_symmetric(n, seed):
    t = random_attachment_tree(n, seed=seed)
    st_ = SpatialTree.build(t)
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, size=6)
    vs = rng.integers(0, n, size=6)
    d1 = tree_distances(st_, us, vs, seed=seed)
    d2 = tree_distances(SpatialTree.build(t), vs, us, seed=seed)
    assert np.array_equal(d1, d2)
    assert (d1 >= 0).all()
