"""Tests for the Karger building block: 1-respecting cut values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.spatial import SpatialTree
from repro.spatial.graph import (
    OneRespectingCuts,
    one_respecting_cuts,
    one_respecting_cuts_reference,
)
from repro.trees import path_tree, prufer_random_tree, random_attachment_tree, star_tree


def random_extra_edges(n, m, rng):
    a = rng.integers(0, n, size=2 * m).reshape(-1, 2)
    keep = a[:, 0] != a[:, 1]
    return a[keep][:m]


class TestCutValues:
    def test_matches_reference_zoo(self, zoo_tree, rng):
        if zoo_tree.n < 3:
            pytest.skip("needs non-tree edges")
        edges = random_extra_edges(zoo_tree.n, 30, rng)
        st_ = SpatialTree.build(zoo_tree)
        got = one_respecting_cuts(st_, edges, seed=1)
        expect = one_respecting_cuts_reference(zoo_tree, edges)
        nonroot = zoo_tree.parents >= 0
        assert np.array_equal(got.cut[nonroot], expect[nonroot])
        assert got.cut[zoo_tree.root] == 0

    def test_weighted_edges(self, rng):
        t = random_attachment_tree(80, seed=2)
        edges = random_extra_edges(80, 20, rng)
        w = rng.integers(1, 10, size=len(edges))
        tw = rng.integers(1, 5, size=80)
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, edges, edge_weights=w, tree_edge_weights=tw, seed=3)
        expect = one_respecting_cuts_reference(t, edges, edge_weights=w, tree_edge_weights=tw)
        nonroot = t.parents >= 0
        assert np.array_equal(got.cut[nonroot], expect[nonroot])

    def test_no_extra_edges_pure_tree(self):
        t = path_tree(10)
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, np.zeros((0, 2), dtype=np.int64), seed=4)
        # every tree edge is a cut of weight exactly 1
        assert (got.cut[1:] == 1).all()

    def test_cycle_edge_cancels_on_path(self):
        # path 0-1-2-3 plus back edge (0, 3): edges inside the cycle have
        # cut value 2, so no 1-respecting cut of value 1 exists on the cycle
        t = path_tree(4)
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, np.array([[0, 3]]), seed=5)
        assert list(got.cut[1:]) == [2, 2, 2]

    def test_minimum_finder(self, rng):
        t = prufer_random_tree(60, seed=6)
        edges = random_extra_edges(60, 15, rng)
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, edges, seed=7)
        v, val = got.minimum(t)
        nonroot = np.flatnonzero(t.parents >= 0)
        assert val == got.cut[nonroot].min()
        assert t.parents[v] >= 0

    def test_hot_endpoint_splitting_used(self, rng):
        """All extra edges share one endpoint — the §VI splitting path."""
        t = random_attachment_tree(100, seed=8)
        other = rng.integers(1, 100, size=50)
        edges = np.stack([np.zeros(50, dtype=np.int64), other], axis=1)
        edges = edges[edges[:, 0] != edges[:, 1]]
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, edges, seed=9, max_queries_per_vertex=4)
        expect = one_respecting_cuts_reference(t, edges)
        nonroot = t.parents >= 0
        assert np.array_equal(got.cut[nonroot], expect[nonroot])

    def test_star_center_cuts(self, rng):
        t = star_tree(40)
        edges = random_extra_edges(40, 10, rng)
        st_ = SpatialTree.build(t)
        got = one_respecting_cuts(st_, edges, seed=10)
        expect = one_respecting_cuts_reference(t, edges)
        assert np.array_equal(got.cut[1:], expect[1:])

    def test_validation(self):
        st_ = SpatialTree.build(path_tree(5))
        with pytest.raises(ValidationError):
            one_respecting_cuts(st_, np.array([[1, 1]]))
        with pytest.raises(ValidationError):
            one_respecting_cuts(st_, np.array([[0, 9]]))
        with pytest.raises(ValidationError):
            one_respecting_cuts(st_, np.array([[0, 1]]), edge_weights=np.ones(3))

    def test_single_vertex_minimum_rejected(self):
        st_ = SpatialTree.build(path_tree(1))
        cuts = one_respecting_cuts(st_, np.zeros((0, 2), dtype=np.int64))
        with pytest.raises(ValidationError):
            cuts.minimum(st_.tree)


@settings(max_examples=12, deadline=None)
@given(n=st.integers(min_value=3, max_value=80), seed=st.integers(0, 300))
def test_property_cut_values_match_reference(n, seed):
    t = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    edges = random_extra_edges(n, min(20, n), rng)
    st_ = SpatialTree.build(t)
    got = one_respecting_cuts(st_, edges, seed=seed)
    expect = one_respecting_cuts_reference(t, edges)
    nonroot = t.parents >= 0
    assert np.array_equal(got.cut[nonroot], expect[nonroot])
