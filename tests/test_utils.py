"""Unit tests for repro.utils: exact integer math, validation, RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.utils import (
    as_index_array,
    ceil_log2,
    ceil_sqrt,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_same_length,
    floor_log2,
    is_power_of_four,
    is_power_of_two,
    next_power_of_four,
    next_power_of_two,
    resolve_rng,
    spawn_rngs,
)


class TestPowers:
    def test_powers_of_two_detection(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(1 << 40)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(6)

    def test_powers_of_four_detection(self):
        assert is_power_of_four(1)
        assert is_power_of_four(4)
        assert is_power_of_four(64)
        assert not is_power_of_four(2)
        assert not is_power_of_four(8)
        assert not is_power_of_four(0)

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_next_power_of_two_properties(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_next_power_of_four_properties(self, n):
        p = next_power_of_four(n)
        assert is_power_of_four(p)
        assert p >= n
        assert p < 4 * n

    def test_next_power_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            next_power_of_two(0)


class TestLogs:
    @given(st.integers(min_value=1, max_value=1 << 60))
    def test_floor_log2_exact(self, n):
        k = floor_log2(n)
        assert 2**k <= n < 2 ** (k + 1)

    @given(st.integers(min_value=1, max_value=1 << 60))
    def test_ceil_log2_exact(self, n):
        k = ceil_log2(n)
        assert 2**k >= n
        if n > 1:
            assert 2 ** (k - 1) < n

    def test_log_rejects_zero(self):
        with pytest.raises(ValidationError):
            floor_log2(0)
        with pytest.raises(ValidationError):
            ceil_log2(0)


class TestCeilSqrt:
    @given(st.integers(min_value=0, max_value=1 << 60))
    def test_ceil_sqrt_exact(self, n):
        r = ceil_sqrt(n)
        assert r * r >= n
        if r > 0:
            assert (r - 1) * (r - 1) < n

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            ceil_sqrt(-1)


class TestValidation:
    def test_as_index_array_accepts_lists(self):
        arr = as_index_array([1, 2, 3])
        assert arr.dtype == np.int64
        assert np.array_equal(arr, [1, 2, 3])

    def test_as_index_array_accepts_integral_floats(self):
        arr = as_index_array(np.array([1.0, 2.0]))
        assert arr.dtype == np.int64

    def test_as_index_array_rejects_fractions(self):
        with pytest.raises(ValidationError):
            as_index_array(np.array([1.5]))

    def test_as_index_array_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_index_array(np.zeros((2, 2), dtype=np.int64))

    def test_check_positive(self):
        assert check_positive(3, name="x") == 3
        with pytest.raises(ValidationError, match="x"):
            check_positive(0, name="x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, name="y") == 0
        with pytest.raises(ValidationError, match="y"):
            check_nonnegative(-1, name="y")

    def test_check_in_range(self):
        check_in_range(np.array([0, 4]), 0, 5, name="z")
        with pytest.raises(ValidationError, match="z"):
            check_in_range(np.array([5]), 0, 5, name="z")
        # empty arrays always pass
        check_in_range(np.array([], dtype=np.int64), 0, 1, name="z")

    def test_check_same_length(self):
        check_same_length(("a", np.zeros(3)), ("b", np.ones(3)))
        with pytest.raises(ValidationError):
            check_same_length(("a", np.zeros(3)), ("b", np.ones(2)))


class TestRng:
    def test_resolve_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert resolve_rng(g) is g

    def test_resolve_rng_seed_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, size=10)
        b = resolve_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        draws = [c.integers(0, 1 << 30) for c in children]
        assert len(set(draws)) == 3  # overwhelmingly likely distinct
