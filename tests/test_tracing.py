"""Tests for the congestion tracer (XY dimension-order routing)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.machine import (
    CongestionTracer,
    SpatialMachine,
    attach_tracer,
    broadcast,
    exclusive_scan,
    render_heatmap,
)


class TestTracerGeometry:
    def test_single_horizontal_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([2]), np.array([3]), np.array([2]))
        # row 2, columns 0..3 each traversed once
        assert tr.load[2].tolist() == [1, 1, 1, 1]
        assert tr.load.sum() == 4

    def test_single_vertical_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([1]), np.array([0]), np.array([1]), np.array([3]))
        assert tr.load[:, 1].tolist() == [1, 1, 1, 1]
        assert tr.load.sum() == 4

    def test_l_shaped_path(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([0]), np.array([2]), np.array([3]))
        # horizontal: (0,0)(1,0)(2,0); vertical: (2,1)(2,2)(2,3)
        assert tr.load[0, :3].tolist() == [1, 1, 1]
        assert tr.load[1:, 2].tolist() == [1, 1, 1]
        assert tr.load.sum() == 6  # distance 5 + 1 endpoint

    def test_upward_vertical(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([3]), np.array([0]), np.array([0]))
        assert tr.load[:, 0].tolist() == [1, 1, 1, 1]

    def test_self_cell_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([1]), np.array([1]), np.array([1]), np.array([1]))
        assert tr.load[1, 1] == 1
        assert tr.load.sum() == 1

    def test_traversals_equal_energy_plus_messages(self):
        """Each message touches exactly distance + 1 cells."""
        rng = np.random.default_rng(0)
        m = SpatialMachine(256)
        tr = attach_tracer(m)
        src = rng.integers(0, 256, size=200)
        dst = rng.integers(0, 256, size=200)
        keep = src != dst
        m.send(src[keep], dst[keep])
        assert tr.total_traversals == m.energy + m.messages

    def test_collectives_traced(self):
        m = SpatialMachine(64)
        tr = attach_tracer(m)
        broadcast(m, 1)
        exclusive_scan(m, np.arange(64))
        assert tr.total_traversals == m.energy + m.messages
        assert tr.max_load >= 1

    def test_reset(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([0]), np.array([3]), np.array([3]))
        tr.reset()
        assert tr.load.sum() == 0 and tr.messages == 0

    def test_invalid_side(self):
        with pytest.raises(ValidationError):
            CongestionTracer(0)


class TestHeatmap:
    def test_render_empty(self):
        tr = CongestionTracer(3)
        out = render_heatmap(tr)
        assert out == "   \n   \n   "

    def test_render_peaks(self):
        tr = CongestionTracer(2)
        tr.load[0, 0] = 9
        tr.load[1, 1] = 1
        out = render_heatmap(tr)
        rows = out.splitlines()
        assert rows[0][0] == "@"  # hottest cell gets the top glyph
        assert rows[0][1] == " "

    def test_congestion_localizes_at_reduce_root(self):
        """A reduce funnels messages toward processor 0's corner: its cell
        must be among the hottest."""
        from repro.machine import reduce

        m = SpatialMachine(256)
        tr = attach_tracer(m)
        reduce(m, np.ones(256, dtype=np.int64))
        x0, y0 = m.positions[m.n - 1]  # reduce accumulates at n-1
        assert tr.load[y0, x0] >= 0.5 * tr.max_load
