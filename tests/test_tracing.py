"""Tests for the congestion tracer (XY dimension-order routing)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.machine import (
    CongestionTracer,
    SpatialMachine,
    attach_tracer,
    broadcast,
    exclusive_scan,
    render_heatmap,
)


class TestTracerGeometry:
    def test_single_horizontal_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([2]), np.array([3]), np.array([2]))
        # row 2, columns 0..3 each traversed once
        assert tr.load[2].tolist() == [1, 1, 1, 1]
        assert tr.load.sum() == 4

    def test_single_vertical_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([1]), np.array([0]), np.array([1]), np.array([3]))
        assert tr.load[:, 1].tolist() == [1, 1, 1, 1]
        assert tr.load.sum() == 4

    def test_l_shaped_path(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([0]), np.array([2]), np.array([3]))
        # horizontal: (0,0)(1,0)(2,0); vertical: (2,1)(2,2)(2,3)
        assert tr.load[0, :3].tolist() == [1, 1, 1]
        assert tr.load[1:, 2].tolist() == [1, 1, 1]
        assert tr.load.sum() == 6  # distance 5 + 1 endpoint

    def test_upward_vertical(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([3]), np.array([0]), np.array([0]))
        assert tr.load[:, 0].tolist() == [1, 1, 1, 1]

    def test_self_cell_message(self):
        tr = CongestionTracer(4)
        tr.record(np.array([1]), np.array([1]), np.array([1]), np.array([1]))
        assert tr.load[1, 1] == 1
        assert tr.load.sum() == 1

    def test_traversals_equal_energy_plus_messages(self):
        """Each message touches exactly distance + 1 cells."""
        rng = np.random.default_rng(0)
        m = SpatialMachine(256)
        tr = attach_tracer(m)
        src = rng.integers(0, 256, size=200)
        dst = rng.integers(0, 256, size=200)
        keep = src != dst
        m.send(src[keep], dst[keep])
        assert tr.total_traversals == m.energy + m.messages

    def test_collectives_traced(self):
        m = SpatialMachine(64)
        tr = attach_tracer(m)
        broadcast(m, 1)
        exclusive_scan(m, np.arange(64))
        assert tr.total_traversals == m.energy + m.messages
        assert tr.max_load >= 1

    def test_reset(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([0]), np.array([3]), np.array([3]))
        tr.reset()
        assert tr.load.sum() == 0 and tr.messages == 0

    def test_invalid_side(self):
        with pytest.raises(ValidationError):
            CongestionTracer(0)


class TestTurnCellExclusion:
    """Direct unit tests for the XY-routing turn-cell bookkeeping: the cell
    where a message turns from its horizontal to its vertical leg must be
    counted exactly once, across every degenerate leg combination."""

    def test_pure_horizontal_rightward(self):
        tr = CongestionTracer(5)
        tr.record(np.array([1]), np.array([2]), np.array([4]), np.array([2]))
        assert tr.load[2, 1:5].tolist() == [1, 1, 1, 1]
        assert tr.total_traversals == 4  # distance 3 + 1, no vertical leg

    def test_pure_horizontal_leftward(self):
        tr = CongestionTracer(5)
        tr.record(np.array([4]), np.array([0]), np.array([1]), np.array([0]))
        assert tr.load[0, 1:5].tolist() == [1, 1, 1, 1]
        assert tr.total_traversals == 4

    def test_pure_vertical_downward(self):
        tr = CongestionTracer(5)
        tr.record(np.array([3]), np.array([0]), np.array([3]), np.array([4]))
        assert tr.load[:, 3].tolist() == [1, 1, 1, 1, 1]
        assert tr.total_traversals == 5

    def test_pure_vertical_upward(self):
        tr = CongestionTracer(5)
        tr.record(np.array([3]), np.array([4]), np.array([3]), np.array([1]))
        assert tr.load[1:5, 3].tolist() == [1, 1, 1, 1]
        assert tr.load[0, 3] == 0
        assert tr.total_traversals == 4

    def test_src_equals_dst_counts_endpoint_once(self):
        tr = CongestionTracer(5)
        tr.record(np.array([2]), np.array([3]), np.array([2]), np.array([3]))
        assert tr.load[3, 2] == 1
        assert tr.total_traversals == 1

    def test_l_path_turn_cell_counted_once_upward(self):
        # horizontal leg to (3, 3), then vertical leg upward to (3, 0):
        # the turn cell (3, 3) belongs to the horizontal leg only
        tr = CongestionTracer(5)
        tr.record(np.array([0]), np.array([3]), np.array([3]), np.array([0]))
        assert tr.load[3, 0:4].tolist() == [1, 1, 1, 1]
        assert tr.load[0:3, 3].tolist() == [1, 1, 1]
        assert tr.load.max() == 1  # nothing double-counted
        assert tr.total_traversals == 7  # distance 6 + 1

    def test_two_messages_sharing_turn_cell(self):
        tr = CongestionTracer(5)
        tr.record(
            np.array([0, 4]), np.array([1, 1]), np.array([2, 2]), np.array([3, 3])
        )
        # both turn at (2, 1) then run down the same column
        assert tr.load[1, 2] == 2
        assert tr.load[2, 2] == 2 and tr.load[3, 2] == 2
        assert tr.total_traversals == 10  # distances 4 + 4, +1 endpoint each

    def test_mixed_batch_matches_energy_invariant(self):
        rng = np.random.default_rng(7)
        m = SpatialMachine(225, curve="zorder")
        tr = attach_tracer(m)
        src = rng.integers(0, 225, size=300)
        dst = rng.integers(0, 225, size=300)
        m.send(src, dst)  # includes accidental self-messages: free, untraced
        assert tr.total_traversals == m.energy + m.messages

    def test_reset_then_reuse(self):
        tr = CongestionTracer(4)
        tr.record(np.array([0]), np.array([0]), np.array([3]), np.array([3]))
        tr.reset()
        assert tr.load.sum() == 0 and tr.messages == 0
        tr.record(np.array([0]), np.array([2]), np.array([3]), np.array([2]))
        assert tr.load[2].tolist() == [1, 1, 1, 1]
        assert tr.messages == 1


class TestHeatmap:
    def test_render_empty(self):
        tr = CongestionTracer(3)
        out = render_heatmap(tr)
        assert out == "   \n   \n   "

    def test_render_peaks(self):
        tr = CongestionTracer(2)
        tr.load[0, 0] = 9
        tr.load[1, 1] = 1
        out = render_heatmap(tr)
        rows = out.splitlines()
        assert rows[0][0] == "@"  # hottest cell gets the top glyph
        assert rows[0][1] == " "

    def test_congestion_localizes_at_reduce_root(self):
        """A reduce funnels messages toward processor 0's corner: its cell
        must be among the hottest."""
        from repro.machine import reduce

        m = SpatialMachine(256)
        tr = attach_tracer(m)
        reduce(m, np.ones(256, dtype=np.int64))
        x0, y0 = m.positions[m.n - 1]  # reduce accumulates at n-1
        assert tr.load[y0, x0] >= 0.5 * tr.max_load
