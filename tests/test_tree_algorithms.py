"""Tests for the sequential reference algorithms: traversals, Euler tours,
treefix sums, LCA, heavy-light decomposition (papers §II-C, §V, §VI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import brute_lca, brute_path_sum, brute_subtree_sum

from repro.trees import (
    BinaryLiftingLCA,
    bottom_up_treefix,
    dfs_postorder,
    dfs_preorder,
    euler_tour,
    first_last_occurrence,
    heavy_children,
    heavy_light_decomposition,
    offline_tarjan_lca,
    path_tree,
    position_of,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
    subtree_sizes_from_tour,
    top_down_treefix,
)


class TestTraversal:
    def test_preorder_parent_before_child(self, zoo_tree):
        order = dfs_preorder(zoo_tree)
        pos = position_of(order)
        for v in range(zoo_tree.n):
            p = zoo_tree.parents[v]
            if p >= 0:
                assert pos[p] < pos[v]

    def test_preorder_subtrees_contiguous(self, zoo_tree):
        order = dfs_preorder(zoo_tree)
        pos = position_of(order)
        sizes = zoo_tree.subtree_sizes()
        for v in range(zoo_tree.n):
            block = pos[v] + np.arange(sizes[v])
            members = order[block]
            assert all(zoo_tree.is_ancestor(v, int(u)) for u in members[:10])

    def test_postorder_children_before_parent(self, zoo_tree):
        order = dfs_postorder(zoo_tree)
        pos = position_of(order)
        for v in range(zoo_tree.n):
            p = zoo_tree.parents[v]
            if p >= 0:
                assert pos[v] < pos[p]

    def test_child_key_reorders(self):
        t = star_tree(5)
        key = np.array([0, 3, 1, 4, 2])
        order = dfs_preorder(t, child_key=key)
        assert list(order) == [0, 2, 4, 1, 3]

    def test_position_of_inverts(self, zoo_tree):
        order = dfs_preorder(zoo_tree)
        pos = position_of(order)
        assert np.array_equal(order[pos], np.arange(zoo_tree.n))


class TestEulerTour:
    def test_length_and_endpoints(self, zoo_tree):
        tour = euler_tour(zoo_tree)
        assert len(tour) == 2 * zoo_tree.n - 1
        assert tour[0] == zoo_tree.root
        assert tour[-1] == zoo_tree.root

    def test_consecutive_visits_are_tree_edges(self, zoo_tree):
        tour = euler_tour(zoo_tree)
        for a, b in zip(tour[:-1], tour[1:]):
            assert zoo_tree.parents[b] == a or zoo_tree.parents[a] == b

    def test_each_vertex_appears_child_count_plus_one_times(self, zoo_tree):
        # exact law: entered once from above (or at the start, for the
        # root), and revisited once after each child's subtree
        tour = euler_tour(zoo_tree)
        counts = np.bincount(tour, minlength=zoo_tree.n)
        assert np.array_equal(counts, zoo_tree.num_children() + 1)

    def test_subtree_sizes_from_tour(self, zoo_tree):
        tour = euler_tour(zoo_tree)
        assert np.array_equal(
            subtree_sizes_from_tour(tour, zoo_tree.n), zoo_tree.subtree_sizes()
        )

    def test_first_last_occurrence(self):
        t = path_tree(3)
        tour = euler_tour(t)  # 0 1 2 1 0
        first, last = first_last_occurrence(tour, 3)
        assert list(first) == [0, 1, 2]
        assert list(last) == [4, 3, 2]


class TestTreefixReferences:
    def test_bottom_up_matches_brute_force(self, zoo_tree, rng):
        vals = rng.integers(-20, 20, size=zoo_tree.n)
        assert np.array_equal(
            bottom_up_treefix(zoo_tree, vals), brute_subtree_sum(zoo_tree, vals)
        )

    def test_top_down_matches_brute_force(self, zoo_tree, rng):
        vals = rng.integers(-20, 20, size=zoo_tree.n)
        assert np.array_equal(
            top_down_treefix(zoo_tree, vals), brute_path_sum(zoo_tree, vals)
        )

    def test_bottom_up_max_operator(self, rng):
        t = random_attachment_tree(120, seed=7)
        vals = rng.integers(-100, 100, size=120)
        got = bottom_up_treefix(t, vals, op=np.maximum)
        for v in (0, 3, 50):
            desc = [u for u in range(120) if t.is_ancestor(v, u)]
            assert got[v] == vals[desc].max()

    def test_value_length_checked(self):
        t = path_tree(3)
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            bottom_up_treefix(t, np.zeros(4))

    def test_subtree_size_via_ones(self, zoo_tree):
        ones = np.ones(zoo_tree.n, dtype=np.int64)
        assert np.array_equal(
            bottom_up_treefix(zoo_tree, ones), zoo_tree.subtree_sizes()
        )

    def test_depth_via_top_down_ones(self, zoo_tree):
        ones = np.ones(zoo_tree.n, dtype=np.int64)
        assert np.array_equal(
            top_down_treefix(zoo_tree, ones), zoo_tree.depths() + 1
        )


class TestLCAReferences:
    def test_binary_lifting_vs_brute(self, zoo_tree, rng):
        oracle = BinaryLiftingLCA(zoo_tree)
        for _ in range(30):
            u, v = rng.integers(0, zoo_tree.n, size=2)
            assert oracle.query(int(u), int(v)) == brute_lca(zoo_tree, int(u), int(v))

    def test_tarjan_vs_binary_lifting(self, zoo_tree, rng):
        oracle = BinaryLiftingLCA(zoo_tree)
        qs = rng.integers(0, zoo_tree.n, size=(50, 2))
        expect = oracle.query_batch(qs[:, 0], qs[:, 1])
        got = offline_tarjan_lca(zoo_tree, qs)
        assert np.array_equal(got, expect)

    def test_lca_identities(self, zoo_tree):
        oracle = BinaryLiftingLCA(zoo_tree)
        r = zoo_tree.root
        assert oracle.query(r, r) == r
        v = zoo_tree.n - 1
        assert oracle.query(v, v) == v
        assert oracle.query(r, v) == r

    def test_tarjan_empty_batch(self, zoo_tree):
        assert len(offline_tarjan_lca(zoo_tree, [])) == 0

    def test_query_range_checked(self):
        t = path_tree(4)
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            BinaryLiftingLCA(t).query(0, 9)


class TestHeavyLight:
    def test_heavy_child_is_largest(self, zoo_tree):
        heavy = heavy_children(zoo_tree)
        sizes = zoo_tree.subtree_sizes()
        for v in range(zoo_tree.n):
            kids = zoo_tree.children(v)
            if len(kids) == 0:
                assert heavy[v] == -1
            else:
                assert sizes[heavy[v]] == sizes[kids].max()

    def test_layer_count_logarithmic(self, zoo_tree):
        hl = heavy_light_decomposition(zoo_tree)
        assert hl.num_layers <= int(np.ceil(np.log2(max(2, zoo_tree.n)))) + 1

    def test_paths_partition_vertices(self, zoo_tree):
        hl = heavy_light_decomposition(zoo_tree)
        seen = np.concatenate(hl.paths())
        assert np.array_equal(np.sort(seen), np.arange(zoo_tree.n))

    def test_paths_follow_heavy_edges(self, zoo_tree):
        hl = heavy_light_decomposition(zoo_tree)
        for path in hl.paths():
            for a, b in zip(path[:-1], path[1:]):
                assert hl.heavy[a] == b

    def test_layers_increase_on_light_edges(self, zoo_tree):
        hl = heavy_light_decomposition(zoo_tree)
        for v in range(zoo_tree.n):
            p = zoo_tree.parents[v]
            if p < 0:
                continue
            if hl.heavy[p] == v:
                assert hl.layer[v] == hl.layer[p]
            else:
                assert hl.layer[v] == hl.layer[p] + 1

    def test_path_tree_single_layer(self):
        hl = heavy_light_decomposition(path_tree(40))
        assert hl.num_layers == 1


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=120), seed=st.integers(0, 1000))
def test_property_treefix_sum_of_root_is_total(n, seed):
    t = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, size=n)
    sums = bottom_up_treefix(t, vals)
    assert sums[t.root] == vals.sum()


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=100), seed=st.integers(0, 1000))
def test_property_lca_depth_bound(n, seed):
    """depth(LCA(u,v)) <= min(depth(u), depth(v)) and LCA is an ancestor."""
    t = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    oracle = BinaryLiftingLCA(t)
    depths = t.depths()
    for _ in range(10):
        u, v = rng.integers(0, n, size=2)
        w = oracle.query(int(u), int(v))
        assert depths[w] <= min(depths[u], depths[v])
        assert t.is_ancestor(w, int(u)) and t.is_ancestor(w, int(v))
