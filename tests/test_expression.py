"""Tests for spatial expression tree evaluation (§V's Miller–Reif lineage)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.spatial import SpatialTree
from repro.spatial.expression import (
    MOD,
    OP_ADD,
    OP_MUL,
    evaluate_expression,
    evaluate_expression_sequential,
    random_expression,
)
from repro.trees import Tree, path_tree, random_attachment_tree, star_tree


class TestSequentialReference:
    def test_hand_case(self):
        # (2 + 3) * 4
        t = Tree(np.array([-1, 0, 0, 1, 1]))
        ops = np.array([OP_MUL, OP_ADD, OP_ADD, OP_ADD, OP_ADD])
        vals = np.array([0, 0, 4, 2, 3])
        out = evaluate_expression_sequential(t, ops, vals)
        assert int(out[0]) == 20 and int(out[1]) == 5

    def test_all_add_equals_treefix(self, zoo_tree, rng):
        from repro.trees import bottom_up_treefix

        vals = rng.integers(0, 1000, size=zoo_tree.n)
        ops = np.full(zoo_tree.n, OP_ADD)
        # with + everywhere, internal vertices' leaf constants are ignored
        # but treefix counts them: zero them out for comparability
        leaf_vals = np.where(zoo_tree.is_leaf(), vals, 0)
        out = evaluate_expression_sequential(zoo_tree, ops, leaf_vals)
        expect = bottom_up_treefix(zoo_tree, leaf_vals)
        assert all(int(a) == int(b) for a, b in zip(out, expect))

    def test_modular_wraparound(self):
        t = path_tree(2)
        ops = np.array([OP_MUL, OP_MUL])
        vals = np.array([0, MOD - 1])
        out = evaluate_expression_sequential(t, ops, vals)
        assert int(out[0]) == (MOD - 1) % MOD


class TestSpatialEvaluation:
    def test_matches_reference_zoo(self, zoo_tree, rng):
        ops = rng.integers(0, 2, size=zoo_tree.n)
        vals = rng.integers(0, 10_000, size=zoo_tree.n)
        expect = evaluate_expression_sequential(zoo_tree, ops, vals)
        st_ = SpatialTree.build(zoo_tree)
        got = evaluate_expression(st_, ops, vals, seed=1)
        assert all(int(a) == int(b) for a, b in zip(got, expect))

    def test_deep_multiplication_chain(self):
        """A pure path of × vertices: compress + affine composition only."""
        n = 200
        t = path_tree(n)
        ops = np.full(n, OP_MUL)
        vals = np.zeros(n, dtype=np.int64)
        vals[n - 1] = 7  # single leaf at the bottom
        st_ = SpatialTree.build(t)
        got = evaluate_expression(st_, ops, vals, seed=2)
        assert int(got[0]) == 7  # product over single-child chains is x itself

    def test_star_products(self):
        n = 100
        t = star_tree(n)
        ops = np.full(n, OP_MUL)
        vals = np.arange(1, n + 1, dtype=np.int64)
        st_ = SpatialTree.build(t)
        got = evaluate_expression(st_, ops, vals, seed=3)
        expect = 1
        for x in vals[1:]:
            expect = (expect * int(x)) % MOD
        assert int(got[0]) == expect

    def test_large_field_values(self):
        tree, ops, vals = random_expression(500, seed=4)
        st_ = SpatialTree.build(tree)
        got = evaluate_expression(st_, ops, vals, seed=5)
        expect = evaluate_expression_sequential(tree, ops, vals)
        assert all(int(a) == int(b) for a, b in zip(got, expect))

    def test_single_vertex(self):
        st_ = SpatialTree.build(path_tree(1))
        got = evaluate_expression(st_, np.array([OP_ADD]), np.array([9]), seed=0)
        assert int(got[0]) == 9

    def test_seed_invariance_of_results(self):
        tree, ops, vals = random_expression(300, seed=6)
        outs = []
        for seed in (1, 2, 3):
            st_ = SpatialTree.build(tree)
            outs.append(evaluate_expression(st_, ops, vals, seed=seed))
        assert all(int(a) == int(b) for a, b in zip(outs[0], outs[1]))
        assert all(int(a) == int(b) for a, b in zip(outs[1], outs[2]))

    def test_costs_near_linear(self):
        per = []
        ns = (1024, 4096)
        for n in ns:
            tree, ops, vals = random_expression(n, seed=7)
            st_ = SpatialTree.build(tree)
            evaluate_expression(st_, ops, vals, seed=8)
            per.append(st_.machine.energy / (n * np.log2(n)))
        assert per[1] <= per[0] * 1.5

    def test_depth_polylog(self):
        n = 4096
        tree, ops, vals = random_expression(n, seed=9)
        st_ = SpatialTree.build(tree)
        evaluate_expression(st_, ops, vals, seed=10)
        assert st_.machine.depth <= 12 * np.log2(n) ** 2

    def test_validation(self):
        st_ = SpatialTree.build(path_tree(4))
        with pytest.raises(ValidationError):
            evaluate_expression(st_, np.zeros(5, dtype=np.int64), np.zeros(4))
        with pytest.raises(ValidationError):
            evaluate_expression(st_, np.full(4, 7), np.zeros(4))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=1, max_value=120), seed=st.integers(0, 300))
def test_property_spatial_matches_sequential(n, seed):
    tree = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    ops = rng.integers(0, 2, size=n)
    vals = rng.integers(0, 1_000_000, size=n)
    st_ = SpatialTree.build(tree)
    got = evaluate_expression(st_, ops, vals, seed=seed)
    expect = evaluate_expression_sequential(tree, ops, vals)
    assert all(int(a) == int(b) for a, b in zip(got, expect))
