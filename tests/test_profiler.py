"""Tests for the spatial profiler: per-cell counters, link windows, memory bounds."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.machine import SpatialMachine, SpatialProfiler, attach_tracer, broadcast
from repro.machine.profiler import CELL_METRICS
from repro.spatial import SpatialTree, treefix_sum
from repro.trees import prufer_random_tree


def run_random_traffic(m, *, rounds=5, k=12, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        src = rng.integers(0, m.n, size=k)
        dst = rng.integers(0, m.n, size=k)
        m.send(src, dst)


class TestCellCounters:
    def test_energy_conservation(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler())
        run_random_traffic(m)
        assert int(prof.cells["energy_sent"].sum()) == m.energy
        assert int(prof.cells["energy_received"].sum()) == m.energy
        assert int(prof.cells["messages_sent"].sum()) == m.messages
        assert int(prof.cells["messages_received"].sum()) == m.messages

    def test_energy_lands_at_the_right_cells(self):
        m = SpatialMachine(16)
        prof = m.attach(SpatialProfiler())
        m.send(0, 5)
        d = int(m.manhattan(np.array([0]), np.array([5]))[0])
        x, y = m.positions[0]
        assert prof.cell_grid("energy_sent")[y, x] == d
        x, y = m.positions[5]
        assert prof.cell_grid("energy_received")[y, x] == d

    def test_queue_occupancy_counts_serialization(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler())
        # processor 0 sends 3 messages in one bulk step: 2 extra rounds
        # queued at its cell; each receiver gets 1 message: no queueing.
        m.send([0, 0, 0], [1, 2, 3])
        x, y = m.positions[0]
        assert prof.cell_grid("queue_occupancy")[y, x] == 2
        assert int(prof.cells["queue_occupancy"].sum()) == 2

    def test_turn_occupancy_matches_xy_turns(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler())
        run_random_traffic(m, rounds=3)
        xs, ys = m._x, m._y
        # recompute expected turn count per cell from first principles
        expect = np.zeros((m.side, m.side), dtype=np.int64)
        rng = np.random.default_rng(0)
        for _ in range(3):
            src = rng.integers(0, m.n, size=12)
            dst = rng.integers(0, m.n, size=12)
            for s, d in zip(src, dst):
                if s != d and xs[s] != xs[d] and ys[s] != ys[d]:
                    expect[ys[s], xs[d]] += 1
        assert np.array_equal(prof.cell_grid("turn_occupancy"), expect)

    def test_self_messages_profile_nothing(self):
        m = SpatialMachine(16)
        prof = m.attach(SpatialProfiler())
        m.send([3, 4], [3, 4])
        assert all(int(prof.cells[name].sum()) == 0 for name in CELL_METRICS)
        assert prof.steps == 0

    def test_distance_histogram_accumulates(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler())
        run_random_traffic(m)
        hist = prof.distance_histogram
        assert int(hist.sum()) == m.messages
        assert int((np.arange(len(hist)) * hist).sum()) == m.energy

    def test_unknown_metric_rejected(self):
        prof = SpatialProfiler()
        with pytest.raises(ValidationError):
            prof.cell_grid("nope")
        with pytest.raises(ValidationError):
            prof.hotspots(metric="nope")


class TestLinkWindows:
    def test_link_traffic_consistent_with_tracer(self):
        # total link traversals == energy: each message crosses exactly
        # `distance` grid edges under XY routing.
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=16))
        run_random_traffic(m)
        prof.flush()
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy
        assert sum(w.link_traffic for w in prof.windows) == m.energy

    def test_windows_partition_the_run(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=8))
        run_random_traffic(m, rounds=10)
        windows = prof.link_windows()
        assert len(windows) >= 2  # depth grew past one window
        assert sum(w.energy for w in windows) == m.energy
        assert sum(w.messages for w in windows) == m.messages
        assert [w.index for w in windows] == sorted(w.index for w in windows)
        for w in windows:
            assert w.depth_start // 8 == w.index

    def test_bounded_memory_evicts_matrices_keeps_scalars(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=4, max_windows=2))
        run_random_traffic(m, rounds=12)
        windows = prof.link_windows()
        assert len(windows) > 2
        retained = [w for w in windows if w.h is not None]
        assert 0 < len(retained) <= 2
        assert retained == windows[-len(retained):]
        for w in windows:
            assert w.max_link_load >= 0 and w.link_traffic >= 0  # scalars survive
        # totals unaffected by eviction
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy

    def test_links_disabled(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(links=False))
        run_random_traffic(m)
        assert prof.link_windows() == []
        assert int(prof.link_h.sum() + prof.link_v.sum()) == 0
        assert int(prof.cells["energy_sent"].sum()) == m.energy

    def test_flush_mid_run_is_safe(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=8))
        run_random_traffic(m, rounds=3, seed=1)
        prof.flush()
        run_random_traffic(m, rounds=3, seed=2)
        prof.flush()
        assert sum(w.energy for w in prof.windows) == m.energy

    def test_max_link_load_positive_under_traffic(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=32))
        run_random_traffic(m)
        assert prof.max_link_load() > 0


class TestLifecycle:
    def test_detach_flushes_pending_window(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=1024))
        run_random_traffic(m)
        assert prof.windows == []  # still pending
        m.detach(prof)
        assert len(prof.windows) == 1

    def test_profiler_rejects_second_machine(self):
        m1, m2 = SpatialMachine(16), SpatialMachine(16)
        prof = m1.attach(SpatialProfiler())
        with pytest.warns(RuntimeWarning):
            m2.attach(prof)  # isolated by the machine's failure handling
        assert m2.instrument_errors

    def test_reset(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=8))
        run_random_traffic(m)
        prof.reset()
        assert prof.steps == 0 and prof.energy == 0
        assert int(prof.cells["energy_sent"].sum()) == 0
        assert prof.windows == []
        run_random_traffic(m)  # still attached and counting
        assert prof.steps > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SpatialProfiler(window=0)
        with pytest.raises(ValidationError):
            SpatialProfiler(max_windows=0)


class TestWorkloads:
    def test_collectives_under_profiler(self):
        m = SpatialMachine(256)
        prof = m.attach(SpatialProfiler(window=4))
        broadcast(m, 7)
        prof.flush()
        assert int(prof.cells["energy_sent"].sum()) == m.energy
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy

    def test_treefix_under_profiler(self):
        tree = prufer_random_tree(128, seed=3)
        st = SpatialTree.build(tree)
        e0 = st.machine.energy  # layout-creation charges predate the profiler
        prof = st.machine.attach(SpatialProfiler(window=32))
        values = np.arange(tree.n)
        treefix_sum(st, values, seed=3)
        assert prof.energy == st.machine.energy - e0
        assert int(prof.cells["energy_sent"].sum()) == prof.energy
        assert prof.hotspots(k=5)

    def test_hotspots_ranked_and_bounded(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler())
        run_random_traffic(m)
        rows = prof.hotspots(metric="energy_sent", k=5)
        assert len(rows) <= 5
        values = [r["energy_sent"] for r in rows]
        assert values == sorted(values, reverse=True)
        assert all(0 <= r["x"] < m.side and 0 <= r["y"] < m.side for r in rows)

    def test_tracer_and_profiler_coexist(self):
        m = SpatialMachine(64)
        tracer = attach_tracer(m)
        prof = m.attach(SpatialProfiler())
        run_random_traffic(m)
        prof.flush()
        # tracer counts cells (distance+1 per message), profiler links (distance)
        assert tracer.total_traversals == m.energy + m.messages
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy
