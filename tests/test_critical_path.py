"""Tests for the depth-clock critical-path analyzer (analysis/critical_path.py).

The load-bearing property: the analyzer's replayed clocks must agree with
the machine's dependency-clock recurrence **exactly** — reconstructed
depth == machine depth on every workload, both engines — and the path's
per-hop contributions must telescope to that depth with no gaps.
"""

import numpy as np
import pytest

from repro.analysis.critical_path import CRITICAL_PATH_SCHEMA, CriticalPathAnalyzer
from repro.errors import MachineStateError
from repro.machine import SpatialMachine
from repro.machine.routing import bitonic_sort
from repro.spatial import SpatialTree, lca_batch, top_down_treefix, treefix_sum
from repro.spatial.expression import (
    evaluate_expression,
    evaluate_expression_sequential,
    random_expression,
)
from repro.trees import (
    BinaryLiftingLCA,
    bottom_up_treefix,
    prufer_random_tree,
    star_tree,
)

ENGINES = ["scalar", "batched"]


def _check(analyzer, machine):
    """The full exactness contract: depth match + telescoping path."""
    analyzer.verify(machine)
    assert analyzer.reconstructed_depth == machine.depth
    hops = analyzer.path()
    assert sum(h.contribution for h in hops) == machine.depth
    # hops chain: each hop's pred_clock is the previous hop's clock or 0
    for prev, cur in zip(hops, hops[1:]):
        assert cur.pred_clock <= prev.clock
    if hops:
        assert hops[0].pred_clock >= 0
        assert hops[-1].clock == machine.depth


class TestWorkloadExactness:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("mode", ["direct", "virtual"])
    def test_treefix_bottom_up(self, engine, mode):
        tree = prufer_random_tree(300, seed=3) if mode == "direct" else star_tree(300)
        st = SpatialTree.build(tree, seed=0, mode=mode, engine=engine)
        analyzer = st.machine.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(3)
        values = rng.integers(0, 100, size=tree.n)
        out = treefix_sum(st, values, seed=3)
        assert np.array_equal(out, bottom_up_treefix(tree, values))
        _check(analyzer, st.machine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_treefix_top_down(self, engine):
        tree = prufer_random_tree(256, seed=4)
        st = SpatialTree.build(tree, seed=0, engine=engine)
        analyzer = st.machine.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(4)
        values = rng.integers(0, 100, size=tree.n)
        top_down_treefix(st, values, seed=4)
        _check(analyzer, st.machine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_lca(self, engine):
        tree = prufer_random_tree(256, seed=5)
        st = SpatialTree.build(tree, seed=0, engine=engine)
        analyzer = st.machine.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(5)
        us = rng.permutation(tree.n)[:128]
        vs = rng.permutation(tree.n)[:128]
        answers = lca_batch(st, us, vs, seed=5)
        assert np.array_equal(answers, BinaryLiftingLCA(tree).query_batch(us, vs))
        _check(analyzer, st.machine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_expression(self, engine):
        tree, ops, leaf_vals = random_expression(200, seed=6)
        st = SpatialTree.build(tree, seed=0, engine=engine)
        analyzer = st.machine.attach(CriticalPathAnalyzer())
        got = evaluate_expression(st, ops, leaf_vals, seed=6)
        expect = evaluate_expression_sequential(tree, ops, leaf_vals)
        assert int(got[tree.root]) == int(expect[tree.root])
        _check(analyzer, st.machine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bitonic_sort(self, engine):
        m = SpatialMachine(256, engine=engine)
        analyzer = m.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1000, size=256).astype(np.int64)
        with m.phase("sort"):
            sorted_keys, _ = bitonic_sort(m, keys)
        assert np.array_equal(sorted_keys, np.sort(keys))
        _check(analyzer, m)

    def test_engines_agree_on_blame(self):
        # identical accounting ⇒ identical critical-path attribution
        tree = prufer_random_tree(300, seed=8)
        rng = np.random.default_rng(8)
        values = rng.integers(0, 100, size=tree.n)
        blames = []
        for engine in ENGINES:
            st = SpatialTree.build(tree, seed=0, engine=engine)
            analyzer = st.machine.attach(CriticalPathAnalyzer())
            treefix_sum(st, values, seed=8)
            _check(analyzer, st.machine)
            blames.append(analyzer.blame(top_k=5))
        assert blames[0]["depth"] == blames[1]["depth"]
        assert blames[0]["phases"] == blames[1]["phases"]


class TestAnalyzerMechanics:
    def test_attach_requires_fresh_machine(self):
        # the machine isolates instrument exceptions: the mid-run attach is
        # rejected into instrument_errors (with a warning), not propagated
        m = SpatialMachine(64)
        m.send(np.array([0, 1]), np.array([2, 3]))
        with pytest.warns(RuntimeWarning, match="must attach before"):
            m.attach(CriticalPathAnalyzer())
        assert any(
            isinstance(exc, MachineStateError)
            for _, _, exc in m.instrument_errors
        )

    def test_verify_detects_missed_steps(self):
        # attach, run, detach, run more: the replay is now stale
        m = SpatialMachine(64)
        analyzer = m.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(0)
        m.send(rng.integers(0, 64, 8), rng.integers(0, 64, 8))
        m.detach(analyzer)
        m.send(rng.integers(0, 64, 8), rng.integers(0, 64, 8))
        with pytest.raises(MachineStateError):
            analyzer.verify(m)

    def test_blame_shape(self):
        m = SpatialMachine(64)
        analyzer = m.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(1)
        with m.phase("p"):
            m.send(rng.integers(0, 64, 32), rng.integers(0, 64, 32))
        blame = analyzer.blame(top_k=3)
        assert blame["schema"] == CRITICAL_PATH_SCHEMA
        assert blame["depth"] == m.depth
        assert len(blame["rounds"]) <= 3
        assert len(blame["cells"]) <= 3
        assert sum(e["contribution"] for e in blame["phases"]) == m.depth
        assert all(e["phase"] == "p" for e in blame["phases"])

    def test_empty_machine(self):
        m = SpatialMachine(16)
        analyzer = m.attach(CriticalPathAnalyzer())
        assert analyzer.reconstructed_depth == 0
        assert analyzer.path() == []
        analyzer.verify(m)

    def test_chrome_trace_events(self):
        m = SpatialMachine(64)
        analyzer = m.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(2)
        with m.phase("p"):
            m.send(rng.integers(0, 64, 16), rng.integers(0, 64, 16))
        events = analyzer.chrome_trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "thread_name" for e in meta)
        assert len(slices) == len(analyzer.path())
        # slices tile [0, depth] on the depth-clock axis
        assert sum(e["dur"] for e in slices) == m.depth
        for e in slices:
            assert e["cat"] == "critical_path"

    def test_publish_critical_path(self):
        from repro.analysis.metrics import MetricsRegistry, publish_critical_path

        m = SpatialMachine(64)
        analyzer = m.attach(CriticalPathAnalyzer())
        rng = np.random.default_rng(3)
        with m.phase("p"):
            m.send(rng.integers(0, 64, 16), rng.integers(0, 64, 16))
        registry = MetricsRegistry()
        publish_critical_path(registry, analyzer)
        text = registry.render_prometheus()
        assert "repro_critical_path_depth" in text
        assert "repro_critical_path_hops" in text
        assert 'repro_critical_path_phase_depth_total{phase="p"}' in text
