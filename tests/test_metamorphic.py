"""Metamorphic tests: cost and result invariants under input transformations.

Three families of properties, each checked under both engines:

* **Relabeling equivariance** — permuting vertex ids permutes treefix
  results accordingly, and the light-first layout's local-messaging energy
  stays inside the O(n) corridor of Theorem 1 for every relabeling (the
  order is computed from tree *structure*, which relabeling preserves).
* **Grid-rotation invariance** — the Manhattan metric is invariant under
  quarter-turn rotations and reflections of the grid, so every layout's
  edge-distance multiset (hence its energy) is too.
* **Virtual-tree preservation** — the §III-D TRANSFORM relays values but
  never reassociates across families, so treefix sums over the virtual
  tree equal the direct-mode results and the sequential oracle exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import TreeLayout
from repro.spatial import SpatialTree
from repro.spatial.treefix import top_down_treefix
from repro.trees import prufer_random_tree, star_tree

ENGINES = ("scalar", "batched")

#: Theorem 1 corridor for light-first layouts under a locality-preserving
#: curve — same constant the layout suite pins (energy/n < 8 on Hilbert).
ENERGY_PER_VERTEX_BOUND = 8.0


def oracle_treefix(tree, values):
    """Sequential bottom-up subtree sums."""
    out = values.astype(np.int64).copy()
    for v in reversed(tree.bfs_order()):
        p = tree.parents[v]
        if p >= 0:
            out[p] += out[v]
    return out


def oracle_top_down(tree, values):
    """Sequential root-path sums."""
    out = values.astype(np.int64).copy()
    for v in tree.bfs_order():
        p = tree.parents[v]
        if p >= 0:
            out[v] += out[p]
    return out


# --------------------------------------------------------------------- #
# relabeling equivariance
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    engine=st.sampled_from(ENGINES),
)
def test_treefix_relabeling_equivariance(n, seed, engine):
    """treefix(relabel(T))[pi[v]] == treefix(T)[v]."""
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, size=n).astype(np.int64)
    pi = rng.permutation(n)
    relabeled = tree.relabel(pi)
    pvals = np.empty_like(vals)
    pvals[pi] = vals

    st1 = SpatialTree.build(tree, seed=0, engine=engine)
    st2 = SpatialTree.build(relabeled, seed=0, engine=engine)
    out1 = st1.treefix_sum(vals, seed=seed)
    out2 = st2.treefix_sum(pvals, seed=seed)
    assert np.array_equal(out2[pi], out1)
    assert np.array_equal(out1, oracle_treefix(tree, vals))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=16, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_layout_energy_corridor_under_relabeling(n, seed):
    """Light-first layout energy stays O(n) for every relabeling of the
    same structure — the Theorem 1 bound depends only on subtree sizes."""
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(3):
        layout = TreeLayout.build(tree, order="light_first", curve="hilbert")
        energy = layout.local_broadcast_energy()
        assert energy / tree.n < ENERGY_PER_VERTEX_BOUND
        tree = tree.relabel(rng.permutation(tree.n))


def test_star_energy_invariant_under_relabeling():
    """Light-first canonicalizes by structure, so relabeling a star (whose
    direct fan-out energy is Θ(n√n), outside the bounded-degree corridor)
    changes the layout energy not at all."""
    tree = star_tree(225)
    rng = np.random.default_rng(3)
    base = TreeLayout.build(tree, order="light_first", curve="hilbert")
    expected = base.local_broadcast_energy()
    for _ in range(4):
        tree = tree.relabel(rng.permutation(tree.n))
        layout = TreeLayout.build(tree, order="light_first", curve="hilbert")
        assert layout.local_broadcast_energy() == expected


# --------------------------------------------------------------------- #
# grid-rotation metric invariance
# --------------------------------------------------------------------- #


def _l1(coords, edges):
    d = np.abs(coords[edges[:, 0]] - coords[edges[:, 1]])
    return d.sum(axis=1)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=128),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    curve=st.sampled_from(["hilbert", "zorder", "rowmajor"]),
)
def test_edge_distances_invariant_under_grid_rotation(n, seed, curve):
    """Rotating/reflecting the grid preserves every edge's L1 distance,
    hence the layout energy the machine would charge."""
    tree = prufer_random_tree(n, seed=seed)
    layout = TreeLayout.build(tree, order="light_first", curve=curve)
    coords = layout.coordinates()
    edges = layout.tree.edges()
    base = _l1(coords, edges)
    assert int(base.sum()) == layout.local_broadcast_energy()
    side = coords.max() + 1  # bounding box is enough for the isometries
    x, y = coords[:, 0], coords[:, 1]
    transforms = {
        "rot90": np.stack([y, side - 1 - x], axis=1),
        "rot180": np.stack([side - 1 - x, side - 1 - y], axis=1),
        "rot270": np.stack([side - 1 - y, x], axis=1),
        "flip": np.stack([y, x], axis=1),
    }
    for name, rotated in transforms.items():
        assert np.array_equal(_l1(rotated, edges), base), name


# --------------------------------------------------------------------- #
# virtual-tree (TRANSFORM) preservation
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    engine=st.sampled_from(ENGINES),
)
def test_virtual_tree_preserves_treefix_sums(n, seed, engine):
    """The degree-≤4 virtual tree relays but never reassociates: virtual-
    and direct-mode treefix agree with each other and the oracle."""
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, size=n).astype(np.int64)
    direct = SpatialTree.build(tree, seed=0, mode="direct", engine=engine)
    virtual = SpatialTree.build(tree, seed=0, mode="virtual", engine=engine)
    expect_up = oracle_treefix(tree, vals)
    expect_down = oracle_top_down(tree, vals)
    assert np.array_equal(direct.treefix_sum(vals, seed=seed), expect_up)
    assert np.array_equal(virtual.treefix_sum(vals, seed=seed), expect_up)
    assert np.array_equal(top_down_treefix(direct, vals, seed=seed), expect_down)
    assert np.array_equal(top_down_treefix(virtual, vals, seed=seed), expect_down)


@pytest.mark.parametrize("engine", ENGINES)
def test_virtual_tree_preserves_high_degree_sums(engine):
    """Star tree: the relay tree is a full binary cascade; sums intact."""
    tree = star_tree(64)
    vals = np.arange(64, dtype=np.int64) - 31
    virtual = SpatialTree.build(tree, seed=0, mode="virtual", engine=engine)
    assert np.array_equal(virtual.treefix_sum(vals, seed=1), oracle_treefix(tree, vals))
