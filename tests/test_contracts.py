"""Tests for the runtime cost-contract instrument (:mod:`repro.contracts`):
frame recording, phase wrapping, machine resolution, opt-in enforcement,
the stats aggregate, and the decorated workload entry points."""

from contextlib import contextmanager
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.metrics import MetricsRegistry, publish_contracts
from repro.contracts import (
    ENFORCE_ENV,
    contract_frames,
    contract_stats,
    cost_contract,
    enforcement_enabled,
    reset_contract_frames,
    set_enforcement,
)
from repro.errors import ContractViolationError, ValidationError
from repro.machine import SpatialMachine
from repro.spatial import SpatialTree
from repro.spatial.treefix import treefix_sum
from repro.trees import prufer_random_tree


@pytest.fixture(autouse=True)
def clean_contract_state():
    reset_contract_frames()
    set_enforcement(None)
    yield
    reset_contract_frames()
    set_enforcement(None)


class FakeMachine:
    """Just enough surface for the wrapper: ledger snapshot + phases."""

    def __init__(self, n=16):
        self.n = n
        self.energy = 0.0
        self.depth = 0.0
        self.phase_stack = []
        self.opened = []

    def snapshot(self):
        return {"energy": self.energy, "depth": self.depth}

    @contextmanager
    def phase(self, name):
        self.phase_stack.append(name)
        self.opened.append(name)
        try:
            yield
        finally:
            self.phase_stack.pop()


# log2n(16) = 4, so slack=2.0 allows a measured energy of at most 8
@cost_contract(energy="log2n", depth="log2n", slack=2.0, phase="work")
def spend(machine, cost):
    machine.energy += cost
    return cost


class TestDecoratorValidation:
    def test_needs_a_claim(self):
        with pytest.raises(ValidationError):
            cost_contract()

    def test_rejects_nonpositive_slack(self):
        with pytest.raises(ValidationError):
            cost_contract(energy="log2n", slack=0.0)

    def test_rejects_non_identifier_predictor(self):
        with pytest.raises(ValidationError):
            cost_contract(energy="not a name")

    def test_contract_stored_on_wrapper(self):
        contract = spend.__cost_contract__
        assert contract.energy == "log2n"
        assert contract.phase == "work"
        assert contract.predictor_names() == {"energy": "log2n", "depth": "log2n"}


class TestMonitoring:
    def test_frame_recorded_per_call(self):
        m = FakeMachine()
        spend(m, 3.0)
        spend(m, 2.0)
        frames = contract_frames()
        assert len(frames) == 2
        assert frames[0].function.endswith("spend")
        assert frames[0].n == 16
        assert frames[0].measured["energy"] == 3.0  # deltas, not totals
        assert frames[1].measured["energy"] == 2.0
        assert frames[0].predicted["energy"] == 4.0
        assert frames[0].ratio("energy") == pytest.approx(3.0 / 4.0)

    def test_bare_call_opens_the_declared_phase(self):
        m = FakeMachine()
        spend(m, 1.0)
        assert m.opened == ["work"]
        assert m.phase_stack == []  # closed again on exit

    def test_callers_phase_is_left_untouched(self):
        m = FakeMachine()
        with m.phase("outer"):
            spend(m, 1.0)
        assert m.opened == ["outer"]  # no nested "work" phase

    def test_machine_resolved_from_result(self):
        @cost_contract(energy="log2n")
        def make(n):
            holder = SimpleNamespace(machine=FakeMachine(n))
            holder.machine.energy = 3.0
            return holder

        make(16)
        (frame,) = contract_frames()
        assert frame.measured["energy"] == 3.0  # totals: no pre-call snapshot

    def test_no_machine_anywhere_records_nothing(self):
        @cost_contract(energy="log2n")
        def pure(x):
            return x + 1

        assert pure(1) == 2
        assert contract_frames() == []

    def test_stats_aggregate_worst_ratio(self):
        m = FakeMachine()
        spend(m, 2.0)
        spend(m, 6.0)
        stats = contract_stats()
        (row,) = stats.values()
        assert row["calls"] == 2.0
        assert row["worst_energy_ratio"] == pytest.approx(6.0 / 4.0)


class TestEnforcement:
    def test_monitoring_is_the_default(self):
        assert not enforcement_enabled()
        m = FakeMachine()
        spend(m, 100.0)  # way past slack x bound, but only recorded
        assert len(contract_frames()) == 1

    def test_violation_raises_when_enabled(self):
        set_enforcement(True)
        m = FakeMachine()
        spend(m, 7.9)  # under 2.0 x log2n(16) = 8
        with pytest.raises(ContractViolationError, match="exceeds"):
            spend(m, 100.0)

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(ENFORCE_ENV, "1")
        assert enforcement_enabled()
        set_enforcement(False)  # explicit override beats the environment
        assert not enforcement_enabled()

    def test_unknown_predictor_raises_only_when_enforced(self):
        @cost_contract(energy="no_such_bound")
        def f(machine):
            return None

        m = FakeMachine()
        f(m)  # monitoring: silently skipped
        set_enforcement(True)
        with pytest.raises(ContractViolationError, match="no_such_bound"):
            f(m)


class TestDecoratedEntryPoints:
    def test_treefix_sum_records_and_respects_its_bound(self):
        set_enforcement(True)  # generous default slack must hold
        tree = prufer_random_tree(64, seed=3)
        st = SpatialTree.build(tree)
        vals = np.arange(64)
        treefix_sum(st, vals, seed=1)
        frames = [f for f in contract_frames() if f.function.endswith("treefix_sum")]
        assert frames
        frame = frames[-1]
        assert frame.measured["energy"] > 0
        assert 0 < frame.ratio("energy") <= 64.0

    def test_routing_contract_opens_phase_for_bare_calls(self):
        from repro.machine.routing import permute

        m = SpatialMachine(16)
        assert not m.phase_stack
        perm = np.random.default_rng(0).permutation(16)
        permute(m, np.arange(16), perm)
        frames = [f for f in contract_frames() if f.function.endswith("permute")]
        assert frames and frames[-1].measured["depth"] > 0


class TestMetricsPublisher:
    def test_publish_contracts_renders_families(self):
        m = FakeMachine()
        spend(m, 3.0)
        registry = MetricsRegistry()
        publish_contracts(registry)
        text = registry.render_prometheus()
        assert "repro_check_contract_calls_total" in text
        assert 'metric="energy"' in text
