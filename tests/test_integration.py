"""Integration tests: full pipelines across subsystems, end-to-end flows
matching how a downstream user would drive the library."""

import numpy as np
import pytest

from repro import SpatialTree, create_light_first_layout
from repro.layout import TreeLayout
from repro.machine import attach_tracer
from repro.spatial import lca_batch, treefix_sum
from repro.spatial.treefix import top_down_treefix
from repro.trees import (
    BinaryLiftingLCA,
    bottom_up_treefix,
    combine_forest,
    prufer_random_tree,
    random_attachment_tree,
    split_forest_values,
    star_tree,
)


class TestEndToEndPipeline:
    """Arbitrary placement → §IV layout creation → §V/§VI algorithms."""

    def test_create_then_compute(self, rng):
        tree = prufer_random_tree(300, seed=21)
        creation = create_light_first_layout(
            tree, seed=22, initial_positions=rng.permutation(300)
        )
        st = SpatialTree(creation.layout)
        vals = rng.integers(0, 100, size=300)
        sums = treefix_sum(st, vals, seed=23)
        assert np.array_equal(sums, bottom_up_treefix(tree, vals))
        us = rng.integers(0, 300, size=50)
        vs = rng.integers(0, 300, size=50)
        answers = lca_batch(st, us, vs, seed=24)
        assert np.array_equal(answers, BinaryLiftingLCA(tree).query_batch(us, vs))
        # the §I-D amortization story: creation >> one algorithm pass
        assert creation.energy > st.machine.energy / 10

    @pytest.mark.parametrize("curve", ["hilbert", "peano", "zorder"])
    def test_all_curves_full_stack(self, curve, rng):
        tree = random_attachment_tree(200, seed=25)
        st = SpatialTree.build(tree, curve=curve)
        vals = rng.integers(0, 50, size=200)
        assert np.array_equal(treefix_sum(st, vals, seed=26), bottom_up_treefix(tree, vals))
        us = rng.integers(0, 200, size=30)
        vs = rng.integers(0, 200, size=30)
        assert np.array_equal(
            lca_batch(st, us, vs, seed=27),
            BinaryLiftingLCA(tree).query_batch(us, vs),
        )

    def test_shared_machine_accumulates_costs(self, rng):
        tree = prufer_random_tree(150, seed=28)
        st = SpatialTree.build(tree)
        vals = np.ones(150, dtype=np.int64)
        treefix_sum(st, vals, seed=29)
        e1 = st.machine.energy
        top_down_treefix(st, vals, seed=30)
        e2 = st.machine.energy
        lca_batch(st, rng.permutation(150), rng.permutation(150), seed=31)
        e3 = st.machine.energy
        assert 0 < e1 < e2 < e3
        phases = st.machine.ledger.summary()
        assert phases["total"]["energy"] == e3

    def test_tracer_through_full_algorithm(self):
        tree = prufer_random_tree(256, seed=32)
        st = SpatialTree.build(tree)
        tracer = attach_tracer(st.machine)
        treefix_sum(st, np.ones(256, dtype=np.int64), seed=33)
        assert tracer.total_traversals == st.machine.energy + st.machine.messages

    def test_forest_end_to_end(self, rng):
        trees = [prufer_random_tree(60, seed=s) for s in range(4)]
        idx = combine_forest(trees)
        st = SpatialTree.build(idx.tree)
        vals = rng.integers(0, 20, size=idx.tree.n)
        vals[0] = 0
        sums = treefix_sum(st, vals, seed=34)
        for t, s, v in zip(
            trees, split_forest_values(idx, sums), split_forest_values(idx, vals)
        ):
            assert np.array_equal(s, bottom_up_treefix(t, v))
        # the super-root holds the forest total
        assert sums[0] == vals.sum()


class TestDeterminism:
    def test_same_seed_same_costs(self):
        tree = prufer_random_tree(200, seed=35)
        snaps = []
        for _ in range(2):
            st = SpatialTree.build(tree)
            treefix_sum(st, np.ones(200, dtype=np.int64), seed=36)
            snaps.append(st.snapshot())
        assert snaps[0] == snaps[1]

    def test_different_seeds_same_results_different_costs(self):
        tree = prufer_random_tree(400, seed=37)
        outs, costs = [], []
        for seed in (1, 2):
            st = SpatialTree.build(tree)
            outs.append(treefix_sum(st, np.arange(400), seed=seed))
            costs.append(st.machine.energy)
        assert np.array_equal(outs[0], outs[1])
        assert costs[0] != costs[1]  # Las Vegas: cost varies, result doesn't


class TestLayoutReuse:
    """§I-D: the layout is computed once and reused across iterations."""

    def test_many_iterations_amortize(self, rng):
        tree = prufer_random_tree(500, seed=38)
        creation = create_light_first_layout(tree, seed=39)
        st = SpatialTree(creation.layout)
        st.virtual_schedule  # one-time
        per_iter = []
        for it in range(3):
            before = st.machine.energy
            treefix_sum(st, rng.integers(0, 10, size=500), seed=40 + it)
            per_iter.append(st.machine.energy - before)
        # steady-state iterations cost the same (±random-mate noise)
        assert max(per_iter) < 1.5 * min(per_iter)
        assert creation.energy > max(per_iter)

    def test_layout_object_is_immutable_enough(self):
        tree = star_tree(64)
        layout = TreeLayout.build(tree)
        with pytest.raises(ValueError):
            layout.order[0] = 5
        with pytest.raises(ValueError):
            layout.position[0] = 5


class TestExamplesRun:
    """The shipped examples must execute cleanly end to end."""

    def test_figures_example(self, capsys):
        import examples.figures as fig

        fig.main()
        out = capsys.readouterr().out
        assert "all figure-level assertions passed" in out

    def test_quickstart_example(self, capsys):
        import examples.quickstart as qs

        qs.main()
        out = capsys.readouterr().out
        assert "treefix sum" in out

    def test_congestion_example(self, capsys, tmp_path):
        import json

        import examples.wafer_congestion as wc

        wc.main(tmp_path)
        out = capsys.readouterr().out
        assert "peak congestion ratio" in out
        # the example doubles as an integration fixture for the report schema
        for order in ("light_first", "random"):
            report = json.loads(
                (tmp_path / f"wafer_congestion_{order}.report.json").read_text()
            )
            heatmap = json.loads(
                (tmp_path / f"wafer_congestion_{order}.heatmap.json").read_text()
            )
            assert report["schema"] == "repro.report/v1"
            assert report["congestion"]["max_load"] == heatmap["max_load"]
            assert len(heatmap["load"]) == heatmap["side"]
            assert sum(map(sum, heatmap["load"])) == heatmap["total_traversals"]
            assert (
                report["totals"]["energy"] + report["totals"]["messages"]
                == heatmap["total_traversals"]
            )

    def test_reproduce_all_checklist(self, capsys):
        import examples.reproduce_all as ra

        ra.CHECKS.clear()
        ra.main()
        out = capsys.readouterr().out
        assert "12/12 checks passed" in out
