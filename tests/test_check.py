"""Tests for the whole-program checker (``repro check``): one seeded
violation per ``CHECKxxx`` class with a clean counterpart, taint/effect
unit coverage, noqa suppression, the renderers, the plan-safety report on
the real repo (list ranking's random-mate rounds are data-dependent while
the treefix/layout phases replay), and the metrics publishers."""

import json

import pytest

from repro.analysis.check import (
    CHECK_CATALOG,
    FINDINGS_SCHEMA,
    PLAN_SAFETY_SCHEMA,
    PREDICTOR_LOOP_BUDGETS,
    VERDICT_DATA_DEPENDENT,
    VERDICT_PLAN_SAFE,
    build_index_from_source,
    check_paths,
    check_source,
    compute_summaries,
    findings_to_json,
    findings_to_sarif,
    format_check,
    merge_sarif,
)
from repro.analysis.metrics import MetricsRegistry, publish_check


def codes(result):
    return [f.code for f in result.findings]


# --------------------------------------------------------------------- #
# seeded violations: one fixture per CHECKxxx class
# --------------------------------------------------------------------- #

PHASE_ESCAPE = """\
from repro.contracts import cost_contract

def _fanout(machine, i):
    machine.send(i, i + 1)

@cost_contract(energy="collective_energy", depth="collective_depth")
def entry(machine):
    _fanout(machine, 0)
"""

PHASE_ESCAPE_FIXED = """\
from repro.contracts import cost_contract

def _fanout(machine, i):
    machine.send(i, i + 1)

@cost_contract(energy="collective_energy", depth="collective_depth", phase="fanout")
def entry(machine):
    _fanout(machine, 0)
"""

SHAPE_MISMATCH = """\
from repro.contracts import cost_contract

@cost_contract(energy="collective_energy", depth="collective_depth", phase="bcast")
def entry(machine, tree):
    for r in range(tree.n):
        for i in range(tree.n):
            machine.send_batch([(i, i + 1)])
"""

BAD_BINDING = """\
from repro.contracts import cost_contract

@cost_contract(energy="no_such_bound", depth="treefix_depth", phase="p")
def entry(machine):
    machine.send_batch([(0, 1)])
"""

HOT_LOOP = """\
def fanout(machine, tree):
    with machine.phase("fanout"):
        for i in range(tree.n):
            machine.send(i, tree.parent[i])
"""

HOT_LOOP_NESTED = """\
def fanout(machine, tree):
    with machine.phase("fanout"):
        for r in range(tree.n):
            for i in range(tree.n):
                machine.send(i, tree.parent[i])
"""

HOT_LOOP_FIXED = """\
def fanout(machine, tree):
    with machine.phase("fanout"):
        machine.send_batch([(i, tree.parent[i]) for i in range(tree.n)])
"""

FALSE_PLAN_SAFE = """\
from numpy.random import default_rng

from repro.contracts import cost_contract

@cost_contract(energy="list_ranking_energy", depth="list_ranking_depth", plan_safe=True)
def entry(machine):
    rng = default_rng(0)
    with machine.phase("mate"):
        coins = rng.permutation(machine.n)
        if coins[0]:
            machine.send_batch([(0, 1)])
"""

TRUE_PLAN_SAFE = """\
from repro.contracts import cost_contract

@cost_contract(energy="treefix_energy", depth="treefix_depth_general", plan_safe=True)
def entry(machine, st):
    with machine.phase("contract"):
        for r in range(32):
            st.send_plan("round", [(0, 1)])
"""


class TestSeededViolations:
    def test_phase_escape_flagged_interprocedurally(self):
        result = check_source(PHASE_ESCAPE)
        assert codes(result) == ["CHECK002"]
        (finding,) = result.findings
        assert "entry" in finding.message
        assert "_fanout" in finding.message  # witness chain names the callee

    def test_contract_phase_covers_the_escape(self):
        assert codes(check_source(PHASE_ESCAPE_FIXED)) == []

    def test_charge_under_phase_scope_is_clean(self):
        src = (
            "def f(machine):\n"
            "    with machine.phase('p'):\n"
            "        machine.send_batch([(0, 1)])\n"
        )
        assert codes(check_source(src)) == []

    def test_shape_mismatch_flagged(self):
        result = check_source(SHAPE_MISMATCH)
        assert codes(result) == ["CHECK003"]
        (finding,) = result.findings
        assert "collective_depth" in finding.message
        # two nested data loops weigh 2 each against a budget of 1
        assert "depth 4" in finding.message
        assert PREDICTOR_LOOP_BUDGETS["collective_depth"] == 1

    def test_shape_within_budget_is_clean(self):
        src = SHAPE_MISMATCH.replace("collective_depth", "layout_creation_depth")
        assert codes(check_source(src)) == []

    def test_bad_binding_flags_both_predictors(self):
        result = check_source(BAD_BINDING)
        assert codes(result) == ["CHECK004", "CHECK004"]
        messages = " ".join(f.message for f in result.findings)
        assert "unknown bounds predictor 'no_such_bound'" in messages
        # treefix_depth exists but needs a bounded_degree keyword
        assert "not callable as treefix_depth(n)" in messages

    def test_malformed_decorator_args_flagged(self):
        src = (
            "from repro.contracts import cost_contract\n"
            "@cost_contract(energy=some_name, slack=-1.0, phase='p')\n"
            "def entry(machine):\n"
            "    machine.send_batch([(0, 1)])\n"
        )
        result = check_source(src)
        assert codes(result) == ["CHECK004", "CHECK004"]
        messages = " ".join(f.message for f in result.findings)
        assert "energy= must be a literal constant" in messages
        assert "slack= must be a literal constant" in messages

    def test_hot_loop_graded_warm_then_hot(self):
        warm = check_source(HOT_LOOP)
        assert codes(warm) == ["CHECK005"]
        assert "[warm]" in warm.findings[0].message
        assert warm.findings[0].line == 4  # the send, not the loop head

        hot = check_source(HOT_LOOP_NESTED)
        assert codes(hot) == ["CHECK005"]
        assert "[hot]" in hot.findings[0].message

    def test_batched_rewrite_is_clean(self):
        assert codes(check_source(HOT_LOOP_FIXED)) == []

    def test_hot_loop_seen_through_a_call(self):
        src = (
            "def _one(machine, i):\n"
            "    machine.send(i, i + 1)\n"
            "\n"
            "def fanout(machine, tree):\n"
            "    with machine.phase('fanout'):\n"
            "        for i in range(tree.n):\n"
            "            _one(machine, i)\n"
        )
        result = check_source(src)
        assert codes(result) == ["CHECK005"]
        finding = result.findings[0]
        assert finding.line == 7  # the call site inside the data loop
        assert "_one" in finding.message

    def test_false_plan_safe_claim_flagged(self):
        result = check_source(FALSE_PLAN_SAFE)
        assert codes(result) == ["CHECK006"]
        (finding,) = result.findings
        assert "plan_safe=True" in finding.message
        assert "mate" in finding.message
        report = result.report
        (phase,) = [p for p in report["phases"] if p["name"] == "mate"]
        assert phase["verdict"] == VERDICT_DATA_DEPENDENT

    def test_plan_backed_rounds_keep_the_claim(self):
        result = check_source(TRUE_PLAN_SAFE)
        assert codes(result) == []
        (row,) = result.report["entry_points"]
        assert row["verdict"] == VERDICT_PLAN_SAFE

    def test_syntax_error_reported_as_check001(self):
        result = check_source("def f(:\n")
        assert codes(result) == ["CHECK001"]


class TestNoqaAndCatalog:
    def test_noqa_suppresses_check_codes(self):
        src = HOT_LOOP.replace(
            "machine.send(i, tree.parent[i])",
            "machine.send(i, tree.parent[i])  # repro: noqa[CHECK005]",
        )
        assert codes(check_source(src)) == []

    def test_blanket_noqa_suppresses(self):
        src = HOT_LOOP.replace(
            "machine.send(i, tree.parent[i])",
            "machine.send(i, tree.parent[i])  # repro: noqa",
        )
        assert codes(check_source(src)) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        src = HOT_LOOP.replace(
            "machine.send(i, tree.parent[i])",
            "machine.send(i, tree.parent[i])  # repro: noqa[CHECK002]",
        )
        assert codes(check_source(src)) == ["CHECK005"]

    def test_catalog_covers_every_emitted_code(self):
        for fixture in (PHASE_ESCAPE, SHAPE_MISMATCH, BAD_BINDING, HOT_LOOP, FALSE_PLAN_SAFE):
            for code in codes(check_source(fixture)):
                assert code in CHECK_CATALOG

    def test_catalog_is_stable(self):
        assert sorted(CHECK_CATALOG) == [f"CHECK00{i}" for i in range(1, 7)]


class TestFindingAnchors:
    """Findings on decorated defs anchor precisely: contract problems on
    the ``@cost_contract`` line (column of the ``@``), reachability
    problems on the ``def`` itself."""

    def test_contract_findings_anchor_on_the_decorator(self):
        result = check_source(BAD_BINDING)
        for finding in result.findings:
            assert finding.line == 3
            assert finding.col == 2  # just past the "@"

    def test_phase_escape_anchors_on_the_def(self):
        (finding,) = check_source(PHASE_ESCAPE).findings
        assert finding.line == 7
        assert finding.col == 1

    def test_false_claim_anchors_on_the_decorator(self):
        (finding,) = check_source(FALSE_PLAN_SAFE).findings
        assert finding.line == 5
        assert finding.col == 2


class TestTaintInference:
    def test_subscript_store_with_tainted_index_taints_target(self):
        # active[sel] = False with data-dependent sel makes `active` data
        src = (
            "from numpy.random import default_rng\n"
            "def f(machine):\n"
            "    rng = default_rng(0)\n"
            "    active = [True] * machine.n\n"
            "    sel = rng.permutation(machine.n)\n"
            "    active[sel] = False\n"
            "    while active:\n"
            "        machine.send_batch([(0, 1)])\n"
        )
        index = build_index_from_source(src)
        _, summaries = compute_summaries(index)
        (summary,) = summaries.values()
        assert summary.unphased_adhoc_tainted is not None

    def test_plain_counter_loop_stays_untainted(self):
        src = (
            "def f(machine, m):\n"
            "    k = 2\n"
            "    while k <= m:\n"
            "        machine.send_batch([(0, 1)])\n"
            "        k *= 2\n"
        )
        index = build_index_from_source(src)
        _, summaries = compute_summaries(index)
        (summary,) = summaries.values()
        assert summary.unphased_adhoc_tainted is None
        assert summary.unphased_adhoc is not None


# --------------------------------------------------------------------- #
# renderers
# --------------------------------------------------------------------- #


class TestRenderers:
    @pytest.fixture()
    def result(self):
        return check_source(FALSE_PLAN_SAFE)

    def test_json_document(self, result):
        doc = findings_to_json(result.findings, tool="repro-check")
        assert doc["schema"] == FINDINGS_SCHEMA
        assert doc["tool"] == "repro-check"
        (row,) = doc["findings"]
        assert row["code"] == "CHECK006"
        assert row["line"] == result.findings[0].line

    def test_sarif_document(self, result):
        doc = findings_to_sarif(result.findings, tool="repro-check", rules=CHECK_CATALOG)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-check"
        (res,) = run["results"]
        assert res["ruleId"] == "CHECK006"
        assert res["level"] == "error"  # claim violations are errors
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(CHECK_CATALOG) <= rule_ids
        json.dumps(doc)  # must be serializable

    def test_warning_level_for_hot_loops(self):
        result = check_source(HOT_LOOP)
        doc = findings_to_sarif(result.findings, tool="repro-check", rules=CHECK_CATALOG)
        assert doc["runs"][0]["results"][0]["level"] == "warning"

    def test_merge_sarif_concatenates_runs(self, result):
        a = findings_to_sarif(result.findings, tool="repro-check", rules=CHECK_CATALOG)
        b = findings_to_sarif([], tool="repro-lint", rules={})
        merged = merge_sarif([a, b])
        assert [r["tool"]["driver"]["name"] for r in merged["runs"]] == [
            "repro-check",
            "repro-lint",
        ]

    def test_format_check_lists_data_dependent_phases(self, result):
        text = format_check(result)
        assert "CHECK006" in text
        assert "plan-safety:" in text
        assert "data-dependent: mate" in text


# --------------------------------------------------------------------- #
# the real repo: acceptance classification
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def repo_result():
    return check_paths(["src/repro"])


class TestRepoCheck:
    def test_repo_is_clean(self, repo_result):
        assert repo_result.findings == []
        assert repo_result.ok

    def test_contracted_entry_points_indexed(self, repo_result):
        assert repo_result.stats["entry_points"] >= 10

    def test_random_mate_rounds_are_data_dependent(self, repo_result):
        verdicts = {p["name"]: p["verdict"] for p in repo_result.report["phases"]}
        for phase in ("list_rank_contract", "list_rank_base", "list_rank_expand"):
            assert verdicts[phase] == VERDICT_DATA_DEPENDENT, phase

    def test_treefix_and_layout_phases_are_plan_safe(self, repo_result):
        verdicts = {p["name"]: p["verdict"] for p in repo_result.report["phases"]}
        for phase in (
            "treefix_*_contract",
            "treefix_*_expand",
            "euler_tour_1",
            "euler_tour_2",
            "child_sort",
            "compact",
            "virtual_tree_construction",
            "bitonic_sort",
            "permute",
        ):
            assert verdicts[phase] == VERDICT_PLAN_SAFE, phase

    def test_entry_verdicts_match_contract_claims(self, repo_result):
        rows = {row["function"]: row for row in repo_result.report["entry_points"]}
        by_name = {name.split("::")[-1]: row for name, row in rows.items()}
        assert by_name["treefix_sum"]["verdict"] == VERDICT_PLAN_SAFE
        assert by_name["lca_batch"]["verdict"] == VERDICT_PLAN_SAFE
        assert by_name["bitonic_sort"]["verdict"] == VERDICT_PLAN_SAFE
        assert by_name["list_rank"]["verdict"] == VERDICT_DATA_DEPENDENT
        # every plan_safe=True claim holds (otherwise CHECK006 would fire)
        for row in rows.values():
            if row["claim_plan_safe"] is True:
                assert row["verdict"] == VERDICT_PLAN_SAFE

    def test_report_schema(self, repo_result):
        report = repo_result.report
        assert report["schema"] == PLAN_SAFETY_SCHEMA
        totals = report["totals"]
        assert totals["phases"] == totals["plan_safe"] + totals["data_dependent"]
        assert totals["entry_points"] == len(report["entry_points"])
        json.dumps(report)  # must be serializable


class TestMetricsPublisher:
    def test_publish_check_renders_families(self, repo_result):
        registry = MetricsRegistry()
        publish_check(registry, repo_result)
        text = registry.render_prometheus()
        assert "repro_check_functions" in text
        assert "repro_check_entry_points" in text
        assert 'repro_check_phases{verdict="data-dependent"}' in text

    def test_publish_check_counts_findings(self):
        registry = MetricsRegistry()
        publish_check(registry, check_source(HOT_LOOP))
        text = registry.render_prometheus()
        assert 'repro_check_findings_total{code="CHECK005"} 1' in text
