"""Tests for the metrics registry: families, labels, exposition formats."""

import json
import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_machine,
    publish_plan_store,
    publish_profiler,
    publish_tracer,
)
from repro.errors import ValidationError
from repro.machine import SpatialMachine, SpatialProfiler, attach_tracer


class TestFamilies:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(4)
        assert "repro_things_total 5" in reg.render_prometheus()

    def test_counter_rejects_decrease_and_set(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        with pytest.raises(ValidationError):
            c.inc(-1)
        with pytest.raises(ValidationError):
            c.set(3)

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth_now")
        g.set(42)
        g.set(17)
        assert "depth_now 17" in reg.render_prometheus()

    def test_labels_materialize_children(self):
        reg = MetricsRegistry()
        c = reg.counter("phase_energy", "per phase", ("phase",))
        c.labels(phase="contract").inc(10)
        c.labels(phase="expand").inc(3)
        c.labels(phase="contract").inc(5)
        text = reg.render_prometheus()
        assert 'phase_energy{phase="contract"} 15' in text
        assert 'phase_energy{phase="expand"} 3' in text

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValidationError):
            c.labels(b=1)
        with pytest.raises(ValidationError):
            c.inc()  # labelled family has no default child

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("0bad")
        with pytest.raises(ValidationError):
            reg.counter("ok_total", labelnames=("bad-label",))

    def test_redeclare_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", labelnames=("x",))
        b = reg.counter("c_total", labelnames=("x",))
        assert a is b
        with pytest.raises(ValidationError):
            reg.gauge("c_total")  # type conflict
        with pytest.raises(ValidationError):
            reg.counter("c_total", labelnames=("y",))  # label conflict

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("p",)).labels(p='a"b\\c\nd').inc()
        line = [ln for ln in reg.render_prometheus().splitlines() if ln.startswith("c_total{")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert line == 'c_total{p="a\\"b\\\\c\\nd"} 1'

    def test_help_text_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "line1\nline2 has a \\ backslash").inc()
        text = reg.render_prometheus()
        help_lines = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        assert help_lines == ["# HELP c_total line1\\nline2 has a \\\\ backslash"]

    def test_render_does_not_mutate_registry(self):
        reg = MetricsRegistry()
        family = reg.counter("c_total", "declared but never incremented")
        before = dict(family.children)
        text = reg.render_prometheus()
        assert "c_total 0" in text  # untouched family still renders a sample
        assert family.children == before == {}
        assert reg.render_prometheus() == text

    def test_type_and_help_exactly_once_per_family(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("k",))
        c.labels(k="a").inc()
        c.labels(k="b").inc()
        reg.counter("c_total", "help", ("k",)).labels(k="a").inc()  # re-declare
        text = reg.render_prometheus()
        assert text.count("# TYPE c_total") == 1
        assert text.count("# HELP c_total") == 1


class TestHistogram:
    def test_buckets_cumulative_and_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("dist", buckets=[1, 4, 16])
        for value, count in [(1, 3), (3, 2), (10, 1), (100, 4)]:
            h.observe(value, count)
        text = reg.render_prometheus()
        assert 'dist_bucket{le="1"} 3' in text
        assert 'dist_bucket{le="4"} 5' in text
        assert 'dist_bucket{le="16"} 6' in text
        assert 'dist_bucket{le="+Inf"} 10' in text
        assert "dist_count 10" in text
        assert "dist_sum 419" in text  # 3·1 + 2·3 + 1·10 + 4·100

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValidationError):
            Histogram("h", "", buckets=[4, 1])

    def test_json_export(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g", labelnames=("k",)).labels(k="v").set(7)
        h = reg.histogram("h", buckets=[1, math.inf])
        h.observe(0.5)
        doc = json.loads(json.dumps(reg.to_json()))  # must be JSON-clean
        assert doc["c_total"]["type"] == "counter"
        assert doc["c_total"]["samples"][0]["value"] == 2
        assert doc["g"]["samples"][0]["labels"] == {"k": "v"}
        hist = doc["h"]["samples"][0]
        assert hist["count"] == 1 and hist["buckets"][-1]["le"] == "+Inf"

    def test_save_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(1)
        prom = reg.save_prometheus(tmp_path / "m.prom")
        js = reg.save_json(tmp_path / "m.json")
        assert "c_total 1" in prom.read_text()
        assert json.loads(js.read_text())["c_total"]["samples"][0]["value"] == 1

    def test_family_class_aliases(self):
        assert Counter("a", "").type == "counter"
        assert Gauge("b", "").type == "gauge"
        assert Histogram("c", "").type == "histogram"


class TestPublishers:
    def _run(self):
        m = SpatialMachine(64)
        attach_tracer(m)
        prof = m.attach(SpatialProfiler(window=8))
        rng = np.random.default_rng(0)
        with m.phase("warm"):
            for _ in range(4):
                m.send(rng.integers(0, 64, 10), rng.integers(0, 64, 10))
        return m, prof

    def test_publish_machine(self):
        m, _ = self._run()
        reg = MetricsRegistry()
        publish_machine(reg, m)
        text = reg.render_prometheus()
        assert f"repro_energy_total {m.energy}" in text
        assert f"repro_depth {m.depth}" in text
        assert 'repro_phase_energy_total{phase="warm"}' in text

    def test_publish_tracer(self):
        m, _ = self._run()
        reg = MetricsRegistry()
        publish_tracer(reg, m.tracer)
        text = reg.render_prometheus()
        assert f"repro_congestion_traversals_total {m.energy + m.messages}" in text

    def test_publish_profiler(self):
        m, prof = self._run()
        reg = MetricsRegistry()
        publish_profiler(reg, prof)
        text = reg.render_prometheus()
        assert f'repro_cell_metric_total{{metric="energy_sent"}} {m.energy}' in text
        assert "repro_link_traffic_total" in text
        assert "repro_message_distance_bucket" in text
        # the distance histogram carries every message
        assert f"repro_message_distance_count {m.messages}" in text

    def test_publish_plan_store(self, tmp_path):
        from repro.plans import PlanStore, record

        store = PlanStore(tmp_path / "plans", capacity=2)
        for n in (8, 12, 16):  # third put evicts the first from memory
            record("sort", n=n, seed=1, shape="uniform", store=store)
        key = ("sort", 16, "hilbert", "uniform")
        store.get(key)  # memory hit
        store.get(("sort", 8, "hilbert", "uniform"))  # disk reload = miss
        reg = MetricsRegistry()
        publish_plan_store(reg, store)
        text = reg.render_prometheus()
        assert "repro_plan_store_size 2" in text
        assert f"repro_plan_store_disk_bytes {store.total_bytes()}" in text
        assert 'repro_plan_store_hits_total{workload="sort"} 1' in text
        assert 'repro_plan_store_misses_total{workload="sort"} 1' in text
        assert 'repro_plan_store_evictions_total{workload="sort"} 2' in text

    def test_all_publishers_share_one_registry(self, tmp_path):
        from repro.plans import PlanStore, record

        m, prof = self._run()
        store = PlanStore(tmp_path / "plans")
        record("sort", n=8, seed=1, shape="uniform", store=store)
        reg = MetricsRegistry()
        publish_machine(reg, m)
        publish_tracer(reg, m.tracer)
        publish_profiler(reg, prof)
        publish_plan_store(reg, store)
        names = [f.name for f in reg.families]
        assert len(names) == len(set(names))
        assert reg.render_prometheus().count("# TYPE") == len(names)
