"""Differential tests: the scalar and batched engines are interchangeable.

The batched engine (``SpatialMachine(engine="batched")``) must be an
*accounting-preserving* replacement for the scalar reference path: same
results, same ledger totals (global and per-phase), same per-processor
dependency clocks, and same step count on every workload. These tests pin
that contract with hypothesis-generated cases (well over 200 across the
suite), a deterministic tree zoo, raw ``send_batch``/``send_plan`` fuzz,
and strict-sanitizer runs under both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import collectives
from repro.machine.machine import SpatialMachine
from repro.spatial import SpatialTree
from repro.spatial.list_ranking import list_rank
from repro.spatial.local_messaging import (
    family_broadcast,
    family_reduce,
    local_broadcast,
    local_reduce,
)
from repro.spatial.treefix import top_down_treefix, treefix_sum
from repro.trees import (
    caterpillar_tree,
    path_tree,
    prufer_random_tree,
    random_binary_tree,
    spider_tree,
    star_tree,
)

ENGINES = ("scalar", "batched")


def assert_machines_agree(ms: SpatialMachine, mb: SpatialMachine) -> None:
    """Full accounting equivalence: totals, phases, clocks, steps."""
    assert ms.snapshot() == mb.snapshot()
    assert ms.steps == mb.steps
    assert np.array_equal(ms.clock, mb.clock)
    assert ms.ledger.summary() == mb.ledger.summary()


def run_on_tree(tree, exercise, *, mode="auto", curve="hilbert", strict=False):
    """Run ``exercise(st) -> result`` under both engines and compare."""
    results = {}
    machines = {}
    for engine in ENGINES:
        stree = SpatialTree.build(
            tree, seed=0, mode=mode, curve=curve, engine=engine, strict=strict
        )
        results[engine] = exercise(stree)
        machines[engine] = stree.machine
    rs, rb = results["scalar"], results["batched"]
    if rs is None:
        assert rb is None
    else:
        assert np.array_equal(np.asarray(rs), np.asarray(rb))
    assert_machines_agree(machines["scalar"], machines["batched"])
    return rs


# --------------------------------------------------------------------- #
# hypothesis: treefix sums (the tentpole workload)
# --------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["direct", "virtual"]),
    curve=st.sampled_from(["hilbert", "zorder", "rowmajor", "boustrophedon"]),
)
def test_treefix_sum_equivalence(n, seed, mode, curve):
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, size=n).astype(np.int64)
    run_on_tree(tree, lambda s: s.treefix_sum(vals, seed=seed), mode=mode, curve=curve)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["direct", "virtual"]),
)
def test_top_down_treefix_equivalence(n, seed, mode):
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    vals = rng.integers(-50, 50, size=n).astype(np.int64)
    run_on_tree(tree, lambda s: top_down_treefix(s, vals, seed=seed), mode=mode)


# --------------------------------------------------------------------- #
# hypothesis: §III local messaging (plain and family-masked)
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["direct", "virtual"]),
    op_name=st.sampled_from(["add", "max", "min"]),
)
def test_local_messaging_equivalence(n, seed, mode, op_name):
    op = {"add": np.add, "max": np.maximum, "min": np.minimum}[op_name]
    identity = {"add": 0, "max": -(2**40), "min": 2**40}[op_name]
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-100, 100, size=n).astype(np.int64)

    def exercise(stree):
        a = local_broadcast(stree, vals, mode=mode)
        b = local_reduce(stree, vals, op=op, identity=identity, mode=mode)
        return np.concatenate([a, b])

    run_on_tree(tree, exercise, mode=mode)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["direct", "virtual"]),
    density=st.floats(min_value=0.0, max_value=1.0),
)
def test_family_masked_equivalence(n, seed, mode, density):
    """Masked kernels exercise the per-family plan selection under both
    engines (including the batched engine's occurrence-index hints)."""
    tree = prufer_random_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    vals = rng.integers(-100, 100, size=n).astype(np.int64)
    families = rng.random(n) < density

    def exercise(stree):
        a = family_broadcast(stree, vals, families, mode=mode)
        b = family_reduce(stree, vals, families, mode=mode)
        return np.concatenate([a, b])

    run_on_tree(tree, exercise, mode=mode)


# --------------------------------------------------------------------- #
# hypothesis: collectives and list ranking
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_collectives_equivalence(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(-100, 100, size=n).astype(np.int64)
    root = int(rng.integers(n))
    machines = {}
    outs = {}
    for engine in ENGINES:
        m = SpatialMachine(n, engine=engine)
        total = collectives.reduce(m, vals)
        bcast = collectives.broadcast(m, 7, root=root)
        allred = collectives.allreduce(m, vals)
        exsc = collectives.exclusive_scan(m, vals)
        insc = collectives.inclusive_scan(m, vals)
        machines[engine] = m
        outs[engine] = (int(total), bcast, allred, exsc, insc)
    s, b = outs["scalar"], outs["batched"]
    assert s[0] == b[0]
    for xs, xb in zip(s[1:], b[1:]):
        assert np.array_equal(xs, xb)
    assert_machines_agree(machines["scalar"], machines["batched"])


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_list_rank_equivalence(k, seed):
    rng = np.random.default_rng(seed)
    order = rng.permutation(k)
    succ = np.full(k, -1, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    machines = {}
    outs = {}
    for engine in ENGINES:
        m = SpatialMachine(k, engine=engine)
        outs[engine] = list_rank(m, succ, seed=seed).ranks
        machines[engine] = m
    assert np.array_equal(outs["scalar"], outs["batched"])
    assert_machines_agree(machines["scalar"], machines["batched"])


# --------------------------------------------------------------------- #
# hypothesis: raw send_batch fuzz (self-messages, ragged rounds, dist=)
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    k=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_dist=st.booleans(),
)
def test_send_batch_fuzz_equivalence(n, k, seed, with_dist):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=k).astype(np.int64)
    dst = rng.integers(0, n, size=k).astype(np.int64)  # self-messages allowed
    n_rounds = int(rng.integers(1, k + 1))
    cuts = np.sort(rng.integers(0, k + 1, size=n_rounds - 1))
    rounds = np.concatenate([[0], cuts, [k]]).astype(np.int64)
    vals = rng.integers(-9, 9, size=k).astype(np.int64)
    machines = {}
    for engine in ENGINES:
        m = SpatialMachine(n, engine=engine)
        dist = m.manhattan(src, dst) if with_dist else None
        m.send_batch(src, dst, vals, rounds=rounds, dist=dist)
        machines[engine] = m
    assert_machines_agree(machines["scalar"], machines["batched"])


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    exclusive=st.booleans(),
)
def test_send_plan_fuzz_equivalence(n, seed, exclusive):
    """send_plan's trusted replay charges exactly like validated send_batch.

    Rounds are built EREW (distinct senders, distinct receivers, src != dst)
    so the same plan is legal with and without the ``exclusive`` hint.
    """
    rng = np.random.default_rng(seed)
    segs = []
    for _ in range(int(rng.integers(1, 5))):
        size = int(rng.integers(1, max(2, n // 2 + 1)))
        perm = rng.permutation(n)
        s, d = perm[:size], perm[size : 2 * size]
        if len(d) < size:
            continue
        segs.append((s.astype(np.int64), d.astype(np.int64)))
    if not segs:
        segs = [(np.array([0], dtype=np.int64), np.array([n - 1], dtype=np.int64))]
    src = np.concatenate([s for s, _ in segs])
    dst = np.concatenate([d for _, d in segs])
    sizes = np.array([len(s) for s, _ in segs], dtype=np.int64)
    rounds = np.concatenate([[0], np.cumsum(sizes)])
    machines = {}
    for engine in ENGINES:
        m = SpatialMachine(n, engine=engine)
        m.send_plan(src, dst, rounds=rounds, exclusive=exclusive)
        machines[engine] = m
    assert_machines_agree(machines["scalar"], machines["batched"])


# --------------------------------------------------------------------- #
# deterministic tree zoo + strict sanitizers
# --------------------------------------------------------------------- #

ZOO = [
    ("path", path_tree(33)),
    ("star", star_tree(32)),
    ("caterpillar", caterpillar_tree(40)),
    ("binary", random_binary_tree(47, seed=5)),
    ("spider", spider_tree(6, 5)),
    ("prufer", prufer_random_tree(50, seed=11)),
]


@pytest.mark.parametrize("name,tree", ZOO, ids=[name for name, _ in ZOO])
@pytest.mark.parametrize("mode", ["direct", "virtual"])
def test_tree_zoo_equivalence(name, tree, mode):
    vals = np.arange(tree.n, dtype=np.int64) - tree.n // 2

    def exercise(stree):
        a = stree.treefix_sum(vals, seed=2)
        b = top_down_treefix(stree, vals, seed=2)
        return np.concatenate([a, b])

    run_on_tree(tree, exercise, mode=mode)


@pytest.mark.parametrize("mode", ["direct", "virtual"])
def test_strict_sanitizers_accept_batched_engine(mode):
    """The write-race/determinism sanitizers see aggregated batch events and
    must accept both engines' replay of the same treefix run."""
    tree = prufer_random_tree(40, seed=7)
    vals = np.ones(tree.n, dtype=np.int64)
    run_on_tree(tree, lambda s: s.treefix_sum(vals, seed=4), mode=mode, strict=True)


def test_engine_is_constructor_validated():
    with pytest.raises(Exception):
        SpatialMachine(4, engine="vectorised")
