"""Differential tests: the routing layer under scalar vs batched engines.

PR 5 extends the batched engine to the Θ(n^{3/2}) routing primitives
(`bitonic_sort` with cached sort-network plans, `permute`, `scatter`) and
threads it through the §IV layout-creation pipeline. These tests pin the
accounting contract: identical results, ledger totals, per-phase bills,
per-processor depth clocks and step counts on every workload, including
non-power-of-two sizes where the network pads with virtual sentinel lanes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine.machine import SpatialMachine
from repro.machine.routing import bitonic_sort, permute, scatter
from repro.spatial.layout_creation import create_light_first_layout
from repro.spatial.subtree_cover import range_broadcast
from repro.spatial import SpatialTree
from repro.trees import prufer_random_tree, star_tree

ENGINES = ("scalar", "batched")


def assert_machines_agree(ms: SpatialMachine, mb: SpatialMachine) -> None:
    """Full accounting equivalence: totals, phases, clocks, steps."""
    assert ms.snapshot() == mb.snapshot()
    assert ms.steps == mb.steps
    assert np.array_equal(ms.clock, mb.clock)
    assert ms.ledger.summary() == mb.ledger.summary()


# --------------------------------------------------------------------- #
# bitonic sort: ascending/descending × payload × non-power-of-two sizes
# --------------------------------------------------------------------- #


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=70),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    descending=st.booleans(),
    with_payload=st.booleans(),
    curve=st.sampled_from(["hilbert", "zorder", "rowmajor"]),
)
def test_bitonic_sort_equivalence(n, seed, descending, with_payload, curve):
    rng = np.random.default_rng(seed)
    keys = rng.integers(-100, 100, size=n).astype(np.int64)  # duplicates likely
    payload = rng.integers(0, 10**6, size=n).astype(np.int64) if with_payload else None
    outs = {}
    machines = {}
    for engine in ENGINES:
        m = SpatialMachine(n, curve=curve, engine=engine)
        with m.phase("sort"):
            k, p = bitonic_sort(m, keys, payload, descending=descending)
        outs[engine] = (k, p)
        machines[engine] = m
    ks, ps = outs["scalar"]
    kb, pb = outs["batched"]
    expect = np.sort(keys)[::-1] if descending else np.sort(keys)
    assert np.array_equal(ks, expect)
    assert np.array_equal(ks, kb)
    if payload is None:
        assert ps is None and pb is None
    else:
        assert np.array_equal(ps, pb)
    assert_machines_agree(machines["scalar"], machines["batched"])


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_permute_equivalence(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(-1000, 1000, size=n).astype(np.int64)
    dest = rng.permutation(n).astype(np.int64)
    outs = {}
    machines = {}
    for engine in ENGINES:
        m = SpatialMachine(n, engine=engine)
        outs[engine] = permute(m, vals, dest)
        machines[engine] = m
    assert np.array_equal(outs["scalar"], outs["batched"])
    assert np.array_equal(outs["scalar"][dest], vals)
    assert_machines_agree(machines["scalar"], machines["batched"])


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    k=st.integers(min_value=1, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_scatter_equivalence(n, k, seed):
    """Partial, duplicate-target, self-message scatters charge identically."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=k).astype(np.int64)
    dst = rng.integers(0, n, size=k).astype(np.int64)
    vals = rng.integers(-9, 9, size=k).astype(np.int64)
    machines = {}
    for engine in ENGINES:
        m = SpatialMachine(n, engine=engine)
        scatter(m, src, dst, vals)
        machines[engine] = m
    assert_machines_agree(machines["scalar"], machines["batched"])


# --------------------------------------------------------------------- #
# the full §IV pipeline
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    curve=st.sampled_from(["hilbert", "zorder"]),
)
def test_layout_creation_equivalence(n, seed, curve):
    """create_light_first_layout: same layout, totals, per-phase bills,
    list-rank round counts, step counts and depth clocks per engine."""
    tree = prufer_random_tree(n, seed=seed)
    res = {
        engine: create_light_first_layout(tree, curve=curve, seed=seed, engine=engine)
        for engine in ENGINES
    }
    rs, rb = res["scalar"], res["batched"]
    assert np.array_equal(rs.layout.order, rb.layout.order)
    assert (rs.energy, rs.depth, rs.messages) == (rb.energy, rb.depth, rb.messages)
    assert rs.steps == rb.steps
    assert rs.phases == rb.phases
    assert rs.list_rank_rounds == rb.list_rank_rounds
    assert rs.machine is not None and rb.machine is not None
    assert_machines_agree(rs.machine, rb.machine)


def test_layout_creation_initial_positions_equivalence():
    """A non-identity starting placement exercises the proc[] indirection
    in every converted send."""
    tree = prufer_random_tree(40, seed=3)
    rng = np.random.default_rng(7)
    init = rng.permutation(40)
    res = {
        engine: create_light_first_layout(
            tree, seed=5, initial_positions=init, engine=engine
        )
        for engine in ENGINES
    }
    rs, rb = res["scalar"], res["batched"]
    assert np.array_equal(rs.layout.order, rb.layout.order)
    assert rs.phases == rb.phases
    assert rs.steps == rb.steps
    assert_machines_agree(rs.machine, rb.machine)


def test_layout_creation_singleton():
    for engine in ENGINES:
        res = create_light_first_layout(prufer_random_tree(1), engine=engine)
        assert (res.energy, res.depth, res.messages, res.steps) == (0, 0, 0, 0)
        assert res.machine is not None and res.machine.engine == engine


# --------------------------------------------------------------------- #
# range broadcast (Lemma 13) — now a single CSR batch
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=4, max_value=64),
)
def test_range_broadcast_equivalence(seed, n):
    rng = np.random.default_rng(seed)
    # carve [0, n) into disjoint ranges of random lengths (some length-1)
    cuts = np.unique(rng.integers(0, n + 1, size=max(1, n // 4)))
    bounds = np.concatenate([[0], cuts[(cuts > 0) & (cuts < n)], [n]])
    starts = bounds[:-1]
    lengths = np.diff(bounds)
    machines = {}
    for engine in ENGINES:
        stree = SpatialTree.build(star_tree(n), order="light_first", engine=engine)
        range_broadcast(stree, starts, lengths)
        machines[engine] = stree.machine
    assert_machines_agree(machines["scalar"], machines["batched"])
