"""Coverage of the remaining public-API surface: small helpers, reprs,
caching behaviour, and a stateful property test of the register file."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import MemoryBudgetError, ValidationError
from repro.machine import RegisterFile, SpatialMachine, scatter
from repro.spatial import SpatialTree
from repro.trees import path_tree, prufer_random_tree, star_tree


class TestSmallHelpers:
    def test_scatter_charges_like_send(self):
        m1 = SpatialMachine(32)
        m2 = SpatialMachine(32)
        src = np.arange(5)
        dst = np.arange(10, 15)
        scatter(m1, src, dst, np.zeros(5))
        m2.send(src, dst, np.zeros(5))
        assert m1.snapshot() == m2.snapshot()

    def test_gather_from(self):
        m = SpatialMachine(16)
        values = np.arange(16) * 3
        got = m.gather_from(np.array([0, 1]), np.array([5, 7]), values)
        assert list(got) == [15, 21]
        assert m.messages == 2

    def test_machine_repr_mentions_costs(self):
        m = SpatialMachine(16)
        m.send(0, 5)
        text = repr(m)
        assert "energy=" in text and "n=16" in text

    def test_spatial_tree_repr(self):
        st_ = SpatialTree.build(path_tree(8))
        assert "SpatialTree" in repr(st_)

    def test_layout_repr(self):
        from repro.layout import TreeLayout

        assert "TreeLayout" in repr(TreeLayout.build(path_tree(8)))

    def test_tree_repr(self):
        assert "Tree(n=8" in repr(path_tree(8))

    def test_curve_repr(self):
        from repro.curves import get_curve

        assert "hilbert" in repr(get_curve("hilbert"))


class TestCaching:
    def test_virtual_schedule_cached(self):
        st_ = SpatialTree.build(star_tree(64), mode="virtual")
        s1 = st_.virtual_schedule
        e1 = st_.machine.energy
        s2 = st_.virtual_schedule
        assert s1 is s2
        assert st_.machine.energy == e1  # no double charging

    def test_children_by_rank_cached(self):
        from repro.spatial.local_messaging import _children_by_rank

        st_ = SpatialTree.build(prufer_random_tree(60, seed=1))
        a = _children_by_rank(st_)
        b = _children_by_rank(st_)
        assert a is b

    def test_tree_lazy_caches_are_consistent(self):
        t = prufer_random_tree(50, seed=2)
        s1 = t.subtree_sizes()
        s2 = t.subtree_sizes()
        assert s1 is s2
        d1 = t.depths()
        assert d1 is t.depths()

    def test_ledger_summary_shape(self):
        m = SpatialMachine(8)
        with m.phase("a"):
            m.send(0, 1)
        s = m.ledger.summary()
        assert set(s) == {"total", "a"}
        assert s["a"]["depth"] >= 1


class RegisterFileMachine(RuleBasedStateMachine):
    """Stateful check: the register file never exceeds its budget, tracks
    its peak, and alloc/free stay consistent under arbitrary interleaving."""

    def __init__(self):
        super().__init__()
        self.rf = RegisterFile(8, budget=5)
        self.model = set()

    names = st.sampled_from([f"r{i}" for i in range(8)])

    @rule(name=names)
    def alloc(self, name):
        if name in self.model:
            with pytest.raises(ValidationError):
                self.rf.alloc(name)
        elif len(self.model) >= 5:
            with pytest.raises(MemoryBudgetError):
                self.rf.alloc(name)
        else:
            arr = self.rf.alloc(name)
            assert arr.shape == (8,)
            self.model.add(name)

    @rule(name=names)
    def free(self, name):
        if name in self.model:
            self.rf.free(name)
            self.model.discard(name)
        else:
            with pytest.raises(ValidationError):
                self.rf.free(name)

    @invariant()
    def live_matches_model(self):
        assert self.rf.live == len(self.model)
        assert self.rf.peak <= self.rf.budget
        for name in self.model:
            assert name in self.rf


TestRegisterFileStateful = RegisterFileMachine.TestCase
TestRegisterFileStateful.settings = settings(max_examples=25, deadline=None)


class TestForestToLocalEdges:
    def test_to_local_boundaries(self):
        from repro.trees import combine_forest, path_tree as pt

        idx = combine_forest([pt(3), pt(4)])
        t, local = idx.to_local(np.array([1, 3, 4, 7]))
        assert list(t) == [0, 0, 1, 1]
        assert list(local) == [0, 2, 0, 3]
