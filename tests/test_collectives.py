"""Tests for the foundational collectives and routing (paper §II-A):
correctness on every size, and the paper's energy/depth envelopes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineStateError, ValidationError
from repro.machine import (
    PRAMSimulator,
    SpatialMachine,
    allreduce,
    barrier,
    bitonic_sort,
    broadcast,
    exclusive_scan,
    inclusive_scan,
    permute,
    reduce,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 100, 255, 256, 257]


@pytest.mark.parametrize("n", SIZES)
class TestCollectiveCorrectness:
    def test_reduce_sum(self, n):
        m = SpatialMachine(n)
        vals = np.arange(n) * 3 - 7
        assert reduce(m, vals) == vals.sum()

    def test_reduce_max(self, n):
        m = SpatialMachine(n)
        rng = np.random.default_rng(n)
        vals = rng.integers(-1000, 1000, size=n)
        assert reduce(m, vals, op=np.maximum) == vals.max()

    def test_broadcast(self, n):
        m = SpatialMachine(n)
        out = broadcast(m, 123, root=n // 2)
        assert (out == 123).all() and len(out) == n

    def test_allreduce(self, n):
        m = SpatialMachine(n)
        vals = np.arange(n)
        out = allreduce(m, vals)
        assert (out == vals.sum()).all()

    def test_exclusive_scan(self, n):
        m = SpatialMachine(n)
        vals = np.arange(n) + 1
        expect = np.concatenate([[0], np.cumsum(vals)[:-1]])
        assert np.array_equal(exclusive_scan(m, vals), expect)

    def test_inclusive_scan(self, n):
        m = SpatialMachine(n)
        vals = (np.arange(n) % 5) - 2
        assert np.array_equal(inclusive_scan(m, vals), np.cumsum(vals))


class TestCollectiveCosts:
    def test_linear_energy(self):
        """§II-A: broadcast/reduce/scan are O(n) energy — the per-element
        energy must stay bounded as n grows 16x."""
        per_elem = []
        for n in (1024, 16384):
            m = SpatialMachine(n)
            exclusive_scan(m, np.ones(n, dtype=np.int64))
            broadcast(m, 1)
            reduce(m, np.ones(n, dtype=np.int64))
            per_elem.append(m.energy / n)
        assert per_elem[1] <= per_elem[0] * 1.2

    def test_logarithmic_depth(self):
        for n in (1024, 16384):
            m = SpatialMachine(n)
            reduce(m, np.ones(n, dtype=np.int64))
            assert m.depth <= 3 * np.log2(n)

    def test_barrier_synchronizes_clocks(self):
        m = SpatialMachine(32)
        m.send(0, 1)
        m.send(5, 6)
        barrier(m)
        assert (m.clock == m.clock[0]).all()

    def test_input_shape_checked(self):
        m = SpatialMachine(8)
        with pytest.raises(ValidationError):
            reduce(m, np.ones(9))
        with pytest.raises(ValidationError):
            broadcast(m, 1, root=9)


class TestPermute:
    @pytest.mark.parametrize("n", [1, 2, 16, 100])
    def test_permute_roundtrip(self, n):
        rng = np.random.default_rng(n)
        m = SpatialMachine(n)
        perm = rng.permutation(n)
        vals = np.arange(n) * 10
        out = permute(m, vals, perm)
        assert np.array_equal(out[perm], vals)

    def test_permute_depth_one(self):
        m = SpatialMachine(64)
        out = permute(m, np.arange(64), np.roll(np.arange(64), 1))
        assert m.depth <= 2

    def test_permute_energy_at_most_n_times_two_sides(self):
        n = 256
        m = SpatialMachine(n)
        rng = np.random.default_rng(0)
        permute(m, np.arange(n), rng.permutation(n))
        assert m.energy <= n * 2 * m.side

    def test_duplicate_destination_rejected(self):
        m = SpatialMachine(4)
        with pytest.raises(ValidationError):
            permute(m, np.arange(4), np.array([0, 0, 1, 2]))

    def test_shape_checked(self):
        m = SpatialMachine(4)
        with pytest.raises(ValidationError):
            permute(m, np.arange(3), np.arange(4))


class TestBitonicSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 33, 100, 257])
    def test_sorts_random_keys(self, n):
        rng = np.random.default_rng(n)
        m = SpatialMachine(n)
        keys = rng.integers(-500, 500, size=n)
        out, _ = bitonic_sort(m, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_descending(self):
        m = SpatialMachine(20)
        keys = np.arange(20)
        out, _ = bitonic_sort(m, keys, descending=True)
        assert np.array_equal(out, np.arange(19, -1, -1))

    def test_payload_follows_keys(self):
        rng = np.random.default_rng(9)
        n = 50
        m = SpatialMachine(n)
        keys = rng.permutation(n)
        out, payload = bitonic_sort(m, keys, payload=keys * 7)
        assert np.array_equal(payload, out * 7)

    def test_duplicate_keys_stable_content(self):
        m = SpatialMachine(16)
        keys = np.array([3, 1, 3, 1] * 4)
        out, _ = bitonic_sort(m, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_energy_scales_as_n_to_three_halves(self):
        es = []
        for n in (256, 4096):
            m = SpatialMachine(n)
            rng = np.random.default_rng(n)
            bitonic_sort(m, rng.integers(0, 10 * n, size=n))
            es.append(m.energy)
        exponent = np.log(es[1] / es[0]) / np.log(4096 / 256)
        assert 1.3 <= exponent <= 1.7

    def test_depth_polylog(self):
        n = 4096
        m = SpatialMachine(n)
        bitonic_sort(m, np.arange(n)[::-1].copy())
        assert m.depth <= 4 * np.log2(n) ** 2

    def test_float_keys_rejected(self):
        m = SpatialMachine(4)
        with pytest.raises(ValidationError):
            bitonic_sort(m, np.array([1.5, 2.5, 0.5, 3.5]))


class TestPRAMSimulator:
    def test_read_write_roundtrip(self):
        pram = PRAMSimulator(4, 16)
        base = pram.alloc(8)
        procs = np.arange(4)
        pram.write(procs, base + procs, procs * 2)
        assert np.array_equal(pram.read(procs, base + procs), procs * 2)

    def test_erew_violation_detected(self):
        pram = PRAMSimulator(4, 16)
        with pytest.raises(MachineStateError):
            pram.read(np.arange(4), np.zeros(4, dtype=np.int64))

    def test_crcw_mode_allows_concurrent_reads(self):
        pram = PRAMSimulator(4, 16, mode="crcw")
        pram.read(np.arange(4), np.zeros(4, dtype=np.int64))

    def test_alloc_exhaustion(self):
        pram = PRAMSimulator(2, 4)
        pram.alloc(3)
        with pytest.raises(MachineStateError):
            pram.alloc(2)

    def test_access_energy_positive_and_distance_based(self):
        pram = PRAMSimulator(8, 64)
        pram.read(np.array([0]), np.array([63]))
        assert pram.energy >= 2  # round trip ≥ 1 each way
        assert pram.messages == 2

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            PRAMSimulator(2, 2, mode="weird")


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=200), seed=st.integers(0, 10_000))
def test_property_scan_matches_numpy(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(-100, 100, size=n)
    m = SpatialMachine(n)
    assert np.array_equal(inclusive_scan(m, vals), np.cumsum(vals))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=128), seed=st.integers(0, 10_000))
def test_property_bitonic_sort_is_permutation_sorted(n, seed):
    rng = np.random.default_rng(seed)
    keys = rng.integers(-1000, 1000, size=n)
    m = SpatialMachine(n)
    out, _ = bitonic_sort(m, keys)
    assert np.array_equal(np.sort(out), np.sort(keys))
    assert (np.diff(out) >= 0).all()
