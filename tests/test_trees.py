"""Unit tests for the Tree data structure and the generators (paper §II-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TreeStructureError, ValidationError
from repro.trees import (
    Tree,
    birth_death_phylogeny,
    caterpillar_tree,
    complete_kary_tree,
    decision_tree_shape,
    path_tree,
    perfect_kary_tree,
    preferential_attachment_tree,
    prufer_random_tree,
    random_attachment_tree,
    random_binary_tree,
    star_tree,
)


class TestTreeConstruction:
    def test_single_vertex(self):
        t = Tree([-1])
        assert t.n == 1 and t.root == 0
        assert t.max_degree == 0
        assert t.height() == 0

    def test_rejects_empty(self):
        with pytest.raises(TreeStructureError):
            Tree(np.array([], dtype=np.int64))

    def test_rejects_no_root(self):
        with pytest.raises(TreeStructureError):
            Tree([0, 0])

    def test_rejects_two_roots(self):
        with pytest.raises(TreeStructureError):
            Tree([-1, -1])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TreeStructureError):
            Tree([-1, 5])

    def test_rejects_cycle(self):
        # 1 → 2 → 1 cycle detached from root 0
        with pytest.raises(TreeStructureError):
            Tree([-1, 2, 1])

    def test_parents_read_only(self):
        t = path_tree(3)
        with pytest.raises(ValueError):
            t.parents[0] = 2

    def test_from_edges_roundtrip(self):
        t = random_attachment_tree(50, seed=1)
        edges = [(int(p), int(c)) for p, c in t.edges()]
        t2 = Tree.from_edges(50, edges, root=t.root)
        assert np.array_equal(t2.parents, t.parents)

    def test_from_edges_wrong_count(self):
        with pytest.raises(TreeStructureError):
            Tree.from_edges(3, [(0, 1)])

    def test_from_edges_disconnected(self):
        with pytest.raises(TreeStructureError):
            Tree.from_edges(4, [(0, 1), (2, 3), (0, 1)])


class TestTreeDerived:
    def test_children_ordered_by_id(self, zoo_tree):
        offsets, targets = zoo_tree.children_csr()
        for v in range(zoo_tree.n):
            kids = targets[offsets[v] : offsets[v + 1]]
            assert np.array_equal(kids, np.sort(kids))
            for c in kids:
                assert zoo_tree.parents[c] == v

    def test_bfs_order_is_permutation_and_level_monotone(self, zoo_tree):
        order = zoo_tree.bfs_order()
        assert np.array_equal(np.sort(order), np.arange(zoo_tree.n))
        depths = zoo_tree.depths()
        assert (np.diff(depths[order]) >= 0).all()

    def test_depths_consistent_with_parents(self, zoo_tree):
        depths = zoo_tree.depths()
        for v in range(zoo_tree.n):
            p = zoo_tree.parents[v]
            if p >= 0:
                assert depths[v] == depths[p] + 1
            else:
                assert depths[v] == 0

    def test_subtree_sizes_sum_and_root(self, zoo_tree):
        s = zoo_tree.subtree_sizes()
        assert s[zoo_tree.root] == zoo_tree.n
        assert (s >= 1).all()
        # each vertex's size = 1 + sum of children sizes
        offsets, targets = zoo_tree.children_csr()
        for v in range(zoo_tree.n):
            kids = targets[offsets[v] : offsets[v + 1]]
            assert s[v] == 1 + s[kids].sum()

    def test_degree_matches_definition(self, zoo_tree):
        for v in range(min(zoo_tree.n, 30)):
            expected = len(zoo_tree.children(v)) + (0 if v == zoo_tree.root else 1)
            assert zoo_tree.degree(v) == expected
        assert zoo_tree.max_degree == max(
            zoo_tree.degree(v) for v in range(zoo_tree.n)
        )

    def test_leaves(self, zoo_tree):
        for v in zoo_tree.leaves():
            assert len(zoo_tree.children(v)) == 0

    def test_is_ancestor(self):
        t = path_tree(5)
        assert t.is_ancestor(0, 4)
        assert t.is_ancestor(2, 2)
        assert not t.is_ancestor(4, 0)

    def test_relabel(self):
        t = path_tree(4)
        perm = np.array([3, 2, 1, 0])
        t2 = t.relabel(perm)
        # old 0 (root) becomes 3
        assert t2.root == 3
        assert t2.parents[0] == 1  # old 3's parent old 2 → new 1
        with pytest.raises(ValidationError):
            t.relabel(np.array([0, 0, 1, 2]))

    def test_edges_shape(self, zoo_tree):
        e = zoo_tree.edges()
        assert e.shape == (zoo_tree.n - 1, 2)
        assert (zoo_tree.parents[e[:, 1]] == e[:, 0]).all()


class TestGenerators:
    def test_path(self):
        t = path_tree(10)
        assert t.height() == 9
        assert t.max_degree == 2

    def test_star(self):
        t = star_tree(10)
        assert t.height() == 1
        assert t.max_degree == 9

    def test_caterpillar_structure(self):
        t = caterpillar_tree(11)
        # ~half spine, ~half leaves; height = spine length - 1
        assert t.height() == 5
        assert len(t.leaves()) == 6
        t2 = caterpillar_tree(11, spine_first=False)
        assert t2.n == 11 and t2.max_degree <= 3

    def test_perfect_kary_sizes(self):
        assert perfect_kary_tree(3, k=2).n == 15
        assert perfect_kary_tree(2, k=3).n == 13
        t = perfect_kary_tree(3, k=2)
        assert (t.depths()[t.leaves()] == 3).all()

    def test_perfect_kary_k1_is_path(self):
        assert perfect_kary_tree(4, k=1).height() == 4

    def test_complete_kary_exact_n(self):
        for n in (1, 2, 7, 20):
            assert complete_kary_tree(n, k=3).n == n

    def test_random_binary_bounded_degree(self):
        t = random_binary_tree(300, seed=0)
        assert t.max_degree <= 3

    def test_random_attachment_reproducible(self):
        a = random_attachment_tree(100, seed=5)
        b = random_attachment_tree(100, seed=5)
        assert np.array_equal(a.parents, b.parents)

    def test_preferential_attachment_skewed(self):
        t = preferential_attachment_tree(500, seed=2)
        assert t.max_degree > 8  # heavy tail

    def test_prufer_uniform_valid(self):
        for seed in range(5):
            t = prufer_random_tree(60, seed=seed)
            assert t.n == 60
        assert prufer_random_tree(1).n == 1
        assert prufer_random_tree(2).n == 2

    def test_phylogeny_full_binary(self):
        t = birth_death_phylogeny(50, seed=1)
        assert t.n == 99
        counts = t.num_children()
        assert set(counts.tolist()) <= {0, 2}
        assert len(t.leaves()) == 50

    def test_decision_tree_exact_n(self):
        for n in (1, 2, 17, 120):
            t = decision_tree_shape(n, seed=3)
            assert t.n == n

    @given(n=st.integers(min_value=1, max_value=300), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_generators_produce_valid_trees(self, n, seed):
        for gen in (random_attachment_tree, random_binary_tree, decision_tree_shape):
            t = gen(n, seed=seed)
            # Tree() would raise on malformed structure; revalidate explicitly
            Tree(t.parents.copy())
