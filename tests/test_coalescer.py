"""Edge-case coverage for the cross-user LCA coalescer.

The pure window algebra (``plan_window`` / ``scatter_answers``) and the
admission-controlled :class:`WindowedQueue` are what stand between many
concurrent clients and the single machine-owning worker, so the corners
get explicit tests: empty windows, single-query windows, duplicate
``(u, v)`` pairs across users (one answer fanned out), oversized merged
batches splitting into chunks, and requests racing the shutdown drain.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ServeDrainingError,
    ServeQueueFullError,
    ValidationError,
)
from repro.serving import (
    PendingRequest,
    WindowedQueue,
    plan_window,
    scatter_answers,
)


def arr(*xs):
    return np.asarray(xs, dtype=np.int64)


# --------------------------------------------------------------------------- #
# plan_window / scatter_answers — the pure algebra
# --------------------------------------------------------------------------- #


class TestPlanWindow:
    def test_empty_window_flush(self):
        plan = plan_window([], max_batch=8)
        assert plan.num_unique == 0
        assert plan.num_chunks == 0
        assert plan.total_queries == 0
        assert list(plan.chunks()) == []
        assert scatter_answers(plan, np.zeros(0, dtype=np.int64)) == []

    def test_all_empty_requests_still_get_answers(self):
        plan = plan_window([(arr(), arr()), (arr(), arr())], max_batch=8)
        assert plan.num_unique == 0
        out = scatter_answers(plan, np.zeros(0, dtype=np.int64))
        assert len(out) == 2 and all(len(a) == 0 for a in out)

    def test_single_query_window(self):
        plan = plan_window([(arr(3), arr(7))], max_batch=8)
        assert plan.num_unique == 1 and plan.num_chunks == 1
        (us, vs), = plan.chunks()
        assert us.tolist() == [3] and vs.tolist() == [7]
        out = scatter_answers(plan, arr(1))
        assert len(out) == 1 and out[0].tolist() == [1]

    def test_duplicate_pairs_across_users_share_one_answer(self):
        # user A asks (3,7) and (5,5); user B asks (7,3) — LCA is
        # symmetric so B's query is A's first one, answered once
        plan = plan_window(
            [(arr(3, 5), arr(7, 5)), (arr(7), arr(3))], max_batch=8
        )
        assert plan.total_queries == 3
        assert plan.num_unique == 2
        assert plan.duplicates_saved == 1
        answers = arr(30, 50)  # one answer per unique canonical pair
        out = scatter_answers(plan, answers)
        assert out[0].tolist() == [30, 50]
        assert out[1].tolist() == [30]  # fan-out of the shared answer

    def test_canonicalization_does_not_conflate_distinct_pairs(self):
        plan = plan_window([(arr(1, 2), arr(2, 1))], max_batch=8)
        assert plan.num_unique == 1  # (1,2) == (2,1)
        plan = plan_window([(arr(1, 1), arr(2, 3))], max_batch=8)
        assert plan.num_unique == 2  # (1,2) != (1,3)

    def test_oversized_batch_splits_into_chunks(self):
        us = np.arange(10, dtype=np.int64)
        vs = np.arange(10, 20, dtype=np.int64)
        plan = plan_window([(us, vs)], max_batch=4)
        assert plan.num_unique == 10
        assert plan.num_chunks == 3  # 4 + 4 + 2
        sizes = [len(u) for u, _ in plan.chunks()]
        assert sizes == [4, 4, 2]
        # chunk concatenation covers every unique pair exactly once
        cat_u = np.concatenate([u for u, _ in plan.chunks()])
        assert np.array_equal(cat_u, plan.us)

    def test_scatter_preserves_request_order_and_lengths(self):
        rng = np.random.default_rng(0)
        queries = [
            (rng.integers(0, 50, size=k), rng.integers(0, 50, size=k))
            for k in (5, 0, 3, 17)
        ]
        plan = plan_window(queries, max_batch=6)
        # identity "answers": answer for pair i is i
        out = scatter_answers(plan, np.arange(plan.num_unique))
        assert [len(a) for a in out] == [5, 0, 3, 17]
        # every query's answer is the index of its canonical pair
        flat = np.concatenate(out)
        assert np.array_equal(flat, plan.inverse)

    def test_rejects_bad_max_batch_and_wrong_answer_count(self):
        with pytest.raises(ValidationError):
            plan_window([], max_batch=0)
        plan = plan_window([(arr(1), arr(2))], max_batch=8)
        with pytest.raises(ValidationError):
            scatter_answers(plan, arr(1, 2))


# --------------------------------------------------------------------------- #
# WindowedQueue — admission control and window collection
# --------------------------------------------------------------------------- #


def lca_req(*pairs):
    us, vs = zip(*pairs)
    return PendingRequest(op="lca", payload={"us": arr(*us), "vs": arr(*vs)})


class TestWindowedQueue:
    def test_window_collects_queued_requests(self):
        q = WindowedQueue(window_s=0.05, max_batch=100, max_queue=10)
        q.submit(lca_req((1, 2)))
        q.submit(lca_req((3, 4)))
        kind, window = q.next_work()
        assert kind == "lca" and len(window) == 2

    def test_zero_window_serves_one_request_per_window(self):
        q = WindowedQueue(window_s=0.0, max_batch=100, max_queue=10)
        q.submit(lca_req((1, 2)))
        q.submit(lca_req((3, 4)))
        kind, window = q.next_work()
        assert kind == "lca" and len(window) == 1

    def test_max_batch_closes_window_early(self):
        q = WindowedQueue(window_s=10.0, max_batch=2, max_queue=10)
        for _ in range(3):
            q.submit(lca_req((1, 2)))
        kind, window = q.next_work()
        assert len(window) == 2  # third stays queued for the next window
        kind, window = q.next_work()
        assert len(window) == 1

    def test_misc_requests_take_priority_and_run_solo(self):
        q = WindowedQueue(window_s=0.05, max_batch=100, max_queue=10)
        q.submit(lca_req((1, 2)))
        q.submit(PendingRequest(op="treefix", payload={"values": arr(1)}))
        kind, window = q.next_work()
        assert kind == "misc" and len(window) == 1
        kind, window = q.next_work()
        assert kind == "lca"

    def test_queue_full_sheds(self):
        q = WindowedQueue(window_s=0.05, max_batch=100, max_queue=2)
        q.submit(lca_req((1, 2)))
        q.submit(lca_req((3, 4)))
        with pytest.raises(ServeQueueFullError):
            q.submit(lca_req((5, 6)))
        assert q.shed_total == 1

    def test_draining_rejects_new_but_flushes_queued(self):
        q = WindowedQueue(window_s=0.05, max_batch=100, max_queue=10)
        q.submit(lca_req((1, 2)))
        q.drain()
        with pytest.raises(ServeDrainingError):
            q.submit(lca_req((3, 4)))
        assert q.rejected_draining_total == 1
        kind, window = q.next_work()  # the admitted request still flows out
        assert kind == "lca" and len(window) == 1
        assert q.next_work() is None  # drained and empty

    def test_requests_racing_shutdown_drain(self):
        """Submitters racing drain() either get served or get a clean 503
        — no request is silently dropped."""
        q = WindowedQueue(window_s=0.001, max_batch=100, max_queue=10_000)
        served: list[PendingRequest] = []
        accepted, rejected = [], []

        def worker():
            while True:
                work = q.next_work(poll_s=0.005)
                if work is None:
                    return
                for req in work[1]:
                    req.finish(result="ok")
                    served.append(req)

        def submitter(i):
            req = lca_req((i, i + 1))
            try:
                q.submit(req)
                accepted.append(req)
            except ServeDrainingError:
                rejected.append(req)

        w = threading.Thread(target=worker)
        w.start()
        threads = [
            threading.Thread(target=submitter, args=(i,)) for i in range(50)
        ]
        for i, t in enumerate(threads):
            t.start()
            if i == 20:
                q.drain()  # race the drain into the middle of the submits
        for t in threads:
            t.join()
        w.join(timeout=5)
        assert not w.is_alive()
        assert len(accepted) + len(rejected) == 50
        # every accepted request was served; none lost in the race
        for req in accepted:
            assert req.done.wait(1) and req.result == "ok"
        assert len(served) == len(accepted)
        assert q.rejected_draining_total == len(rejected)

    def test_pending_request_timeout_and_error_propagation(self):
        req = lca_req((1, 2))
        with pytest.raises(TimeoutError):
            req.wait(timeout=0.01)
        req.finish(error=ValidationError("boom"))
        with pytest.raises(ValidationError, match="boom"):
            req.wait(timeout=0.01)
        assert req.latency_s > 0

    def test_flush_errors_fails_everything_queued(self):
        q = WindowedQueue(window_s=0.05, max_batch=100, max_queue=10)
        reqs = [lca_req((i, i + 1)) for i in range(3)]
        for r in reqs:
            q.submit(r)
        n = q.flush_errors(RuntimeError("worker died"))
        assert n == 3 and len(q) == 0
        for r in reqs:
            with pytest.raises(RuntimeError):
                r.wait(timeout=0.01)

    def test_window_timing_closes_by_deadline(self):
        q = WindowedQueue(window_s=0.03, max_batch=1000, max_queue=100)
        q.submit(lca_req((1, 2)))
        t0 = time.monotonic()
        kind, window = q.next_work()
        elapsed = time.monotonic() - t0
        assert kind == "lca" and len(window) == 1
        assert elapsed < 1.0  # closed by the window deadline, not poll loops
