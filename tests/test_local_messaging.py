"""Tests for §III local messaging: both kernels, both modes, masked
variants, and the Theorem 1/3 cost envelopes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.spatial import (
    SpatialTree,
    family_broadcast,
    family_reduce,
    local_broadcast,
    local_reduce,
)
from repro.trees import (
    path_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
)


def expected_broadcast(tree, values):
    out = values.copy()
    nonroot = tree.parents >= 0
    out[nonroot] = values[tree.parents[nonroot]]
    return out


def expected_reduce(tree, values, op=np.add, identity=0):
    out = np.full(tree.n, identity, dtype=np.int64)
    for v in range(tree.n):
        p = tree.parents[v]
        if p >= 0:
            out[p] = op(out[p], values[v])
    return out


@pytest.mark.parametrize("mode", ["direct", "virtual"])
class TestKernels:
    def test_broadcast_matches_reference(self, zoo_tree, rng, mode):
        vals = rng.integers(0, 1000, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        got = local_broadcast(st_, vals)
        assert np.array_equal(got, expected_broadcast(zoo_tree, vals))

    def test_reduce_matches_reference(self, zoo_tree, rng, mode):
        vals = rng.integers(0, 1000, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        got = local_reduce(st_, vals)
        assert np.array_equal(got, expected_reduce(zoo_tree, vals))

    def test_reduce_max_operator(self, zoo_tree, rng, mode):
        vals = rng.integers(-500, 500, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        lo = np.int64(np.iinfo(np.int64).min)
        got = local_reduce(st_, vals, op=np.maximum, identity=lo)
        assert np.array_equal(got, expected_reduce(zoo_tree, vals, np.maximum, lo))

    def test_methods_on_spatial_tree(self, zoo_tree, rng, mode):
        vals = rng.integers(0, 10, size=zoo_tree.n)
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        assert np.array_equal(
            st_.local_broadcast(vals), expected_broadcast(zoo_tree, vals)
        )

    def test_values_shape_checked(self, zoo_tree, rng, mode):
        st_ = SpatialTree.build(zoo_tree, mode=mode)
        with pytest.raises(ValidationError):
            local_broadcast(st_, np.zeros(zoo_tree.n + 1))


class TestMaskedVariants:
    def test_family_broadcast_only_selected(self, rng):
        t = random_attachment_tree(120, seed=3)
        vals = rng.integers(0, 100, size=120)
        families = np.zeros(120, dtype=bool)
        chosen = [int(v) for v in range(120) if len(t.children(v))][:5]
        families[chosen] = True
        st_ = SpatialTree.build(t)
        got = family_broadcast(st_, vals, families)
        for v in range(120):
            p = t.parents[v]
            if p >= 0 and families[p]:
                assert got[v] == vals[p]
            else:
                assert got[v] == vals[v]

    def test_family_reduce_contribute_mask(self, rng):
        t = star_tree(40)
        vals = rng.integers(1, 10, size=40)
        contribute = np.zeros(40, dtype=bool)
        contribute[1:20] = True
        fam = np.zeros(40, dtype=bool)
        fam[0] = True
        st_ = SpatialTree.build(t, mode="virtual")
        got = family_reduce(st_, vals, fam, contribute=contribute)
        assert got[0] == vals[1:20].sum()

    def test_family_reduce_inactive_family_gets_identity(self):
        t = path_tree(5)
        st_ = SpatialTree.build(t)
        got = family_reduce(st_, np.ones(5, dtype=np.int64), np.zeros(5, dtype=bool))
        assert (got == 0).all()


class TestCostEnvelopes:
    def test_linear_energy_in_n(self):
        """Theorem 1/3: one local broadcast is O(n) energy; per-vertex
        energy must stay bounded across a 16x size increase."""
        per = []
        for n in (1024, 16384):
            t = prufer_random_tree(n, seed=1)
            st_ = SpatialTree.build(t, mode="virtual")
            st_.virtual_schedule  # build (and charge) once
            base = st_.machine.energy
            local_broadcast(st_, np.zeros(n, dtype=np.int64))
            per.append((st_.machine.energy - base) / n)
        assert per[1] <= per[0] * 1.5

    def test_virtual_depth_logarithmic_on_star(self):
        n = 4096
        st_ = SpatialTree.build(star_tree(n), mode="virtual")
        st_.virtual_schedule  # construction charge (itself O(log n)) first
        before = st_.machine.depth
        assert before <= 6 * np.log2(n)
        local_broadcast(st_, np.zeros(n, dtype=np.int64))
        assert st_.machine.depth - before <= 3 * np.log2(n)

    def test_direct_depth_linear_on_star(self):
        n = 512
        st_ = SpatialTree.build(star_tree(n), mode="direct")
        local_broadcast(st_, np.zeros(n, dtype=np.int64))
        assert st_.machine.depth >= n - 2

    def test_bounded_degree_direct_depth_constant(self):
        st_ = SpatialTree.build(path_tree(2048), mode="direct")
        local_broadcast(st_, np.zeros(2048, dtype=np.int64))
        assert st_.machine.depth <= 4

    def test_auto_mode_selection(self):
        assert SpatialTree.build(path_tree(64)).mode == "direct"
        assert SpatialTree.build(star_tree(64)).mode == "virtual"

    def test_virtual_construction_charged_once(self):
        t = star_tree(100)
        st_ = SpatialTree.build(t, mode="virtual")
        local_broadcast(st_, np.zeros(100, dtype=np.int64))
        e1 = st_.machine.energy
        local_broadcast(st_, np.zeros(100, dtype=np.int64))
        e2 = st_.machine.energy - e1
        # second broadcast is cheaper: no construction charge
        construction = st_.machine.ledger.summary().get(
            "virtual_tree_construction", {"energy": 0}
        )["energy"]
        assert construction > 0
        assert e2 < e1


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=1, max_value=150), seed=st.integers(0, 500))
def test_property_broadcast_reduce_roundtrip(n, seed):
    """broadcast(ones) then reduce(received) counts children correctly."""
    t = random_attachment_tree(n, seed=seed)
    st_ = SpatialTree.build(t)
    received = local_broadcast(st_, np.arange(n, dtype=np.int64))
    nonroot = t.parents >= 0
    assert np.array_equal(received[nonroot], t.parents[nonroot])
    counts = local_reduce(st_, np.ones(n, dtype=np.int64))
    assert np.array_equal(counts, t.num_children())
