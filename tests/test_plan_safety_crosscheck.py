"""Cross-check: the static plan-safety report vs. the dynamic recorder.

Two independent subsystems claim to know which phases are plan-safe:
``repro check --plan-safety`` proves it statically from effect signatures,
and :class:`~repro.plans.WorkloadPlanRecorder` observes it dynamically
(phases that draw per-round coins call ``mark_speculative``). This battery
pins the two views together so they cannot drift apart silently:

* every phase the recorder marks speculative must be ``data-dependent``
  in the static report (a recorder-speculative phase the checker calls
  plan-safe would replay stale rounds without epoch validation);
* every recorded phase the recorder does *not* mark must be provably
  ``plan-safe`` (a data-dependent phase the recorder misses would replay
  without any oracle at all);
* plans whose phases are all statically plan-safe carry zero epochs —
  their replays never consult the coin oracle.

Report phase names may be wildcarded (``treefix_*_contract``), so matching
is fnmatch in both directions.
"""

from __future__ import annotations

from fnmatch import fnmatch

import pytest

from repro.analysis.check import check_paths
from repro.plans import WORKLOADS, record
from repro.plans.recorder import EpochOp, PhaseEnterOp

CASES = [
    ("treefix", "prufer"),
    ("treefix_top_down", "caterpillar"),
    ("lca", "binary"),
    ("sort", "uniform"),
    ("list_rank", "chain"),
    ("layout_creation", "random"),
]


def _matches(name: str, pattern: str) -> bool:
    # report names may be patterns (treefix_*_contract) or literals; the
    # recorded name is always literal — match either direction
    return fnmatch(name, pattern) or fnmatch(pattern, name)


@pytest.fixture(scope="module")
def report():
    return check_paths(["src/repro"]).report


@pytest.fixture(scope="module")
def verdicts(report):
    out: dict[str, list[str]] = {"plan-safe": [], "data-dependent": []}
    for phase in report["phases"]:
        out[phase["verdict"]].append(phase["name"])
    return out


@pytest.fixture(scope="module")
def recorded():
    return {
        (wl, shape): record(wl, n=28, seed=13, shape=shape).plan
        for wl, shape in CASES
    }


def test_report_shape(report):
    assert report["schema"] == "repro.plan-safety/v1"
    assert report["phases"]


@pytest.mark.parametrize("wl,shape", CASES)
def test_speculative_phases_are_statically_data_dependent(
    wl, shape, recorded, verdicts
):
    plan = recorded[(wl, shape)]
    for phase in plan.speculative:
        assert any(_matches(phase, p) for p in verdicts["data-dependent"]), (
            f"recorder marked {phase!r} speculative but the static checker "
            "does not flag it data-dependent"
        )
        assert not any(_matches(phase, p) for p in verdicts["plan-safe"]), (
            f"checker claims {phase!r} is plan-safe yet the recorder saw it "
            "draw per-round coins"
        )


@pytest.mark.parametrize("wl,shape", CASES)
def test_unmarked_recorded_phases_are_provably_plan_safe(
    wl, shape, recorded, verdicts
):
    plan = recorded[(wl, shape)]
    entered = {op.name for op in plan.ops if isinstance(op, PhaseEnterOp)}
    for phase in sorted(entered - set(plan.speculative)):
        assert any(_matches(phase, p) for p in verdicts["plan-safe"]), (
            f"phase {phase!r} was recorded without speculation but the "
            "static checker cannot prove it plan-safe"
        )


@pytest.mark.parametrize("wl,shape", CASES)
def test_plan_safe_only_plans_carry_no_epochs(wl, shape, recorded, verdicts):
    plan = recorded[(wl, shape)]
    entered = {op.name for op in plan.ops if isinstance(op, PhaseEnterOp)}
    all_safe = all(
        any(_matches(phase, p) for p in verdicts["plan-safe"])
        for phase in entered
    )
    if all_safe:
        assert plan.epoch_count == 0
        assert plan.speculative == ()
    else:
        assert plan.epoch_count > 0
        assert plan.speculative


def test_every_workload_exercised():
    assert {wl for wl, _ in CASES} == set(WORKLOADS)


def test_epoch_drawing_phases_match_marked_set(recorded):
    """The phase *under* which each epoch is drawn (context + innermost
    entered phase at that point in the op stream) is always a marked
    speculative phase."""
    for plan in recorded.values():
        stack: list[str] = []
        for op in plan.ops:
            if isinstance(op, PhaseEnterOp):
                stack.append(op.name)
            elif op.__class__.__name__ == "PhaseExitOp":
                stack.pop()
            elif isinstance(op, EpochOp):
                assert stack, "epoch drawn outside any phase"
                assert stack[-1] in plan.speculative
                assert op.context == "/".join(stack[:-1])
