"""Tests for the machine's instrument protocol (observer subscription API)."""

import numpy as np
import pytest

from repro.machine import (
    CostLedger,
    Instrument,
    LedgerInstrument,
    SpatialMachine,
    SpatialProfiler,
    StepLog,
    TracerInstrument,
    allreduce,
    attach_tracer,
    broadcast,
    exclusive_scan,
    reduce,
)
from repro.machine.tracing import CongestionTracer


class Collector(Instrument):
    """Records every hook invocation for assertions."""

    def __init__(self):
        self.events = []
        self.phases = []
        self.attached = 0
        self.detached = 0

    def on_attach(self, machine):
        self.attached += 1

    def on_detach(self, machine):
        self.detached += 1

    def on_step(self, event):
        self.events.append(event)

    def on_phase_enter(self, name, depth):
        self.phases.append(("enter", name, depth))

    def on_phase_exit(self, name, depth):
        self.phases.append(("exit", name, depth))


class Exploder(Instrument):
    """An instrument that raises on every step."""

    def on_step(self, event):
        raise RuntimeError("boom")


class TestSubscription:
    def test_attach_returns_instrument_and_fires_lifecycle(self):
        m = SpatialMachine(16)
        c = m.attach(Collector())
        assert c in m.instruments
        assert c.attached == 1
        m.detach(c)
        assert c not in m.instruments
        assert c.detached == 1

    def test_attach_twice_is_noop(self):
        m = SpatialMachine(16)
        c = Collector()
        m.attach(c)
        m.attach(c)
        assert list(m.instruments).count(c) == 1
        assert c.attached == 1

    def test_detach_never_attached_is_safe(self):
        m = SpatialMachine(16)
        m.detach(Collector())  # must not raise

    def test_ledger_is_a_builtin_instrument(self):
        m = SpatialMachine(16)
        assert any(isinstance(i, LedgerInstrument) for i in m.instruments)

    def test_detach_mid_run_stops_event_flow(self):
        m = SpatialMachine(16)
        c = m.attach(Collector())
        m.send(0, 1)
        assert len(c.events) == 1
        m.detach(c)
        m.send(1, 2)
        assert len(c.events) == 1  # no longer observing
        # the machine itself keeps accounting
        assert m.messages == 2

    def test_detached_ledger_stops_charging(self):
        m = SpatialMachine(16)
        ledger_inst = next(i for i in m.instruments if isinstance(i, LedgerInstrument))
        m.send(0, 1)
        m.detach(ledger_inst)
        m.send(1, 2)
        assert m.messages == 1  # second send unobserved by the ledger


class TestStepEvents:
    def test_two_instruments_observe_identical_streams(self):
        m = SpatialMachine(64)
        a, b = m.attach(Collector()), m.attach(StepLog())
        with m.phase("p"):
            m.send(np.arange(16), np.arange(16, 32))
        m.send([0, 0, 5], [9, 3, 5])  # includes a free self-message
        assert len(a.events) == len(b.events) == 2
        for ea, eb in zip(a.events, b.events):
            assert ea is eb  # one event object per step, shared by observers
        assert a.events[0].phases == ("p",)
        assert a.events[1].phases == ()

    def test_event_fields_consistent(self):
        m = SpatialMachine(64)
        log = m.attach(StepLog())
        m.send([0, 0, 1, 7], [9, 3, 1, 2])  # 1->1 is free
        (ev,) = log.events
        assert ev.step == 0
        assert ev.messages == 3 == len(ev.src) == len(ev.dst) == len(ev.distances)
        assert ev.energy == int(ev.distances.sum()) == m.energy
        assert ev.distance_histogram.sum() == ev.messages
        assert ev.src_count == 2  # senders 0 and 7
        assert ev.dst_count == 3
        assert ev.depth_before == 0
        assert ev.depth_after == m.depth
        assert ev.metric == "manhattan"
        assert ev.max_distance == int(ev.distances.max())

    def test_event_arrays_are_readonly(self):
        m = SpatialMachine(16)
        log = m.attach(StepLog())
        m.send([0, 1], [2, 3])
        (ev,) = log.events
        with pytest.raises(ValueError):
            ev.src[0] = 5
        with pytest.raises(ValueError):
            ev.distances[0] = 5

    def test_self_only_send_fires_no_event(self):
        m = SpatialMachine(16)
        log = m.attach(StepLog())
        m.send([3, 4], [3, 4])
        assert len(log.events) == 0
        assert m.steps == 0

    def test_step_indices_are_sequential(self):
        m = SpatialMachine(32)
        log = m.attach(StepLog())
        for i in range(4):
            m.send(i, i + 1)
        assert [e.step for e in log.events] == [0, 1, 2, 3]
        assert m.steps == 4

    def test_collectives_flow_through_events(self):
        m = SpatialMachine(64)
        log = m.attach(StepLog())
        broadcast(m, 1)
        assert sum(e.energy for e in log.events) == m.energy
        assert sum(e.messages for e in log.events) == m.messages

    def test_phase_stack_recorded_on_events(self):
        m = SpatialMachine(32)
        log = m.attach(StepLog())
        with m.phase("outer"):
            m.send(0, 1)
            with m.phase("inner"):
                m.send(1, 2)
        assert log.events[0].phases == ("outer",)
        assert log.events[1].phases == ("outer", "inner")

    def test_phase_notifications_paired(self):
        m = SpatialMachine(32)
        c = m.attach(Collector())
        with m.phase("a"):
            with m.phase("b"):
                m.send(0, 4)
        kinds = [(k, n) for k, n, _ in c.phases]
        assert kinds == [("enter", "a"), ("enter", "b"), ("exit", "b"), ("exit", "a")]


class TestOpenPhaseLifecycle:
    """Attach/detach while a phase is open: late subscribers see a
    consistent (if partial) view and never corrupt anyone else's."""

    def test_attach_mid_phase_sees_remaining_events_only(self):
        m = SpatialMachine(32)
        c = Collector()
        with m.phase("p"):
            m.send(0, 1)
            m.attach(c)
            m.send(1, 2)
        assert len(c.events) == 1
        assert c.events[0].phases == ("p",)
        # the exit of a phase entered before attachment is still delivered
        assert ("exit", "p") in [(k, n) for k, n, _ in c.phases]
        assert ("enter", "p") not in [(k, n) for k, n, _ in c.phases]

    def test_detach_mid_phase_stops_event_flow_cleanly(self):
        m = SpatialMachine(32)
        c = m.attach(Collector())
        with m.phase("p"):
            m.send(0, 1)
            m.detach(c)
            m.send(1, 2)
        assert len(c.events) == 1
        assert ("exit", "p") not in [(k, n) for k, n, _ in c.phases]
        # machine-side accounting is unaffected
        assert m.ledger.phases["p"].messages == 2

    def test_recorder_attached_mid_phase_exports_wellformed_spans(self):
        from repro.analysis.report import RunRecorder, chrome_trace_events

        m = SpatialMachine(32)
        with m.phase("outer"):
            m.send(0, 1)
            rec = m.attach(RunRecorder())
            with m.phase("inner"):
                m.send(1, 2)
        # the unmatched outer exit is dropped, the inner span is complete
        assert [s["name"] for s in rec.finished_spans()] == ["inner"]
        chrome_trace_events(rec)  # must not raise

    def test_profiler_detached_mid_phase_flushes(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=1024))
        with m.phase("p"):
            m.send(np.arange(8), np.arange(8, 16))
            m.detach(prof)
        assert len(prof.windows) == 1
        assert sum(w.energy for w in prof.windows) == prof.energy


class TestCollectivesUnderProfiler:
    """Collectives must emit StepEvents that a profiler can account exactly."""

    @pytest.mark.parametrize(
        "run",
        [
            lambda m: broadcast(m, 3),
            lambda m: reduce(m, np.arange(m.n)),
            lambda m: allreduce(m, np.arange(m.n)),
            lambda m: exclusive_scan(m, np.arange(m.n)),
        ],
        ids=["broadcast", "reduce", "allreduce", "exclusive_scan"],
    )
    def test_events_account_for_all_charges(self, run):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=8))
        log = m.attach(StepLog())
        run(m)
        prof.flush()
        assert m.energy > 0 and m.steps == len(log.events)
        assert sum(e.energy for e in log.events) == m.energy
        assert sum(e.messages for e in log.events) == m.messages
        assert prof.energy == m.energy
        assert int(prof.cells["energy_sent"].sum()) == m.energy
        assert int(prof.cells["energy_received"].sum()) == m.energy
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy
        assert sum(w.energy for w in prof.windows) == m.energy

    def test_collective_depth_covered_by_windows(self):
        m = SpatialMachine(64)
        prof = m.attach(SpatialProfiler(window=4))
        allreduce(m, np.arange(m.n))
        windows = prof.link_windows()
        assert windows[0].depth_start == 0
        assert windows[-1].depth_end >= m.depth - 4  # last window spans the tail
        assert all(b.index > a.index for a, b in zip(windows, windows[1:]))

    def test_profiler_and_tracer_agree_on_collective(self):
        m = SpatialMachine(64)
        tracer = attach_tracer(m)
        prof = m.attach(SpatialProfiler())
        reduce(m, np.arange(m.n))
        prof.flush()
        assert tracer.total_traversals == m.energy + m.messages
        assert int(prof.link_h.sum() + prof.link_v.sum()) == m.energy


class TestFailureIsolation:
    def test_raising_instrument_does_not_corrupt_ledger(self):
        m = SpatialMachine(32)
        m.attach(Exploder())
        ref = SpatialMachine(32)
        with pytest.warns(RuntimeWarning):
            m.send(np.arange(8), np.arange(8, 16))
        ref.send(np.arange(8), np.arange(8, 16))
        assert m.snapshot() == ref.snapshot()
        assert m.instrument_errors
        inst, hook, exc = m.instrument_errors[0]
        assert hook == "on_step" and isinstance(exc, RuntimeError)

    def test_raising_instrument_does_not_starve_later_instruments(self):
        m = SpatialMachine(32)
        m.attach(Exploder())
        log = m.attach(StepLog())  # attached after the exploder
        with pytest.warns(RuntimeWarning):
            m.send(0, 1)
        assert len(log.events) == 1

    def test_raising_instrument_preserves_profiler_counts(self):
        # a profiler attached alongside a faulty instrument stays exact
        m = SpatialMachine(32)
        prof = m.attach(SpatialProfiler(window=8))
        m.attach(Exploder())
        with pytest.warns(RuntimeWarning):
            m.send(np.arange(8), np.arange(8, 16))
        prof.flush()
        assert prof.energy == m.energy
        assert int(prof.cells["energy_sent"].sum()) == m.energy
        assert sum(w.energy for w in prof.windows) == m.energy

    def test_raising_phase_hook_is_isolated(self):
        class PhaseExploder(Instrument):
            def on_phase_enter(self, name, depth):
                raise RuntimeError("phase boom")

        m = SpatialMachine(32)
        m.attach(PhaseExploder())
        c = m.attach(Collector())
        with pytest.warns(RuntimeWarning):
            with m.phase("p"):
                m.send(0, 1)
        assert [(k, n) for k, n, _ in c.phases] == [("enter", "p"), ("exit", "p")]
        assert m.ledger.phases["p"].energy == m.energy
        assert any(hook == "on_phase_enter" for _, hook, _ in m.instrument_errors)

    def test_raising_instrument_keeps_payload_delivery(self):
        m = SpatialMachine(32)
        m.attach(Exploder())
        vals = np.array([7, 8])
        with pytest.warns(RuntimeWarning):
            out = m.send([0, 1], [2, 3], vals)
        assert out is vals


class TestTracerCompat:
    def test_attach_tracer_via_property(self):
        m = SpatialMachine(64)
        tr = attach_tracer(m)
        assert m.tracer is tr
        m.send(0, 5)
        assert tr.total_traversals == m.energy + m.messages

    def test_tracer_none_detaches(self):
        m = SpatialMachine(64)
        tr = attach_tracer(m)
        m.send(0, 5)
        before = tr.total_traversals
        m.tracer = None
        assert m.tracer is None
        assert not any(isinstance(i, TracerInstrument) for i in m.instruments)
        m.send(5, 9)
        assert tr.total_traversals == before

    def test_tracer_instrument_direct_attach(self):
        m = SpatialMachine(64)
        inst = m.attach(TracerInstrument(CongestionTracer(m.side)))
        assert m.tracer is inst.tracer
        m.send(0, 9)
        assert inst.tracer.messages == 1

    def test_replacing_tracer_detaches_old(self):
        m = SpatialMachine(64)
        old = attach_tracer(m)
        new = attach_tracer(m)
        assert m.tracer is new
        m.send(0, 9)
        assert old.messages == 0 and new.messages == 1


class TestLedgerCompat:
    def test_ledger_property_setter(self):
        m = SpatialMachine(16)
        m.send(0, 1)
        fresh = CostLedger()
        m.ledger = fresh
        assert m.energy == 0
        m.send(1, 2)
        assert m.ledger is fresh and m.messages == 1

    def test_reset_costs_keeps_instruments(self):
        m = SpatialMachine(16)
        log = m.attach(StepLog())
        m.send(0, 1)
        m.reset_costs()
        assert m.snapshot() == {"energy": 0, "messages": 0, "depth": 0}
        assert m.steps == 0
        assert log in m.instruments
        m.send(1, 2)
        assert log.events[-1].step == 0  # step counter restarted
