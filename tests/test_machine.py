"""Tests for the spatial machine: energy accounting, the 1-port depth
model, the register file, and the cost ledger (paper §II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineStateError, MemoryBudgetError, ValidationError
from repro.machine import CostLedger, RegisterFile, SpatialMachine


class TestGeometry:
    def test_positions_follow_curve(self):
        m = SpatialMachine(16, curve="hilbert")
        from repro.curves import get_curve

        expected = get_curve("hilbert").positions(16, m.side)
        assert np.array_equal(m.positions, expected)

    def test_manhattan_symmetry(self):
        m = SpatialMachine(64)
        a = np.array([0, 5, 10])
        b = np.array([63, 7, 10])
        assert np.array_equal(m.manhattan(a, b), m.manhattan(b, a))
        assert m.manhattan(np.array([3]), np.array([3]))[0] == 0

    def test_minimal_side(self):
        assert SpatialMachine(16).side == 4
        assert SpatialMachine(17).side == 8
        assert SpatialMachine(5, curve="peano").side == 3

    def test_explicit_side_validated(self):
        with pytest.raises(ValidationError):
            SpatialMachine(100, side=4)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValidationError):
            SpatialMachine(0)


class TestEnergyAccounting:
    def test_single_message_energy_is_distance(self):
        m = SpatialMachine(16)
        m.send(0, 15)
        assert m.energy == m.manhattan(np.array([0]), np.array([15]))[0]
        assert m.messages == 1

    def test_self_message_free(self):
        m = SpatialMachine(4)
        m.send(2, 2)
        assert m.energy == 0 and m.messages == 0 and m.depth == 0

    def test_bulk_energy_is_sum(self):
        m = SpatialMachine(64)
        src = np.arange(10)
        dst = np.arange(10, 20)
        m.send(src, dst)
        assert m.energy == int(m.manhattan(src, dst).sum())
        assert m.messages == 10

    def test_payload_returned_unchanged(self):
        m = SpatialMachine(8)
        vals = np.array([7, 8])
        out = m.send([0, 1], [2, 3], vals)
        assert out is vals

    def test_mismatched_endpoints_rejected(self):
        m = SpatialMachine(8)
        with pytest.raises(MachineStateError):
            m.send([0, 1], [2])
        with pytest.raises(MachineStateError):
            m.send([0], [1], np.zeros(3))

    def test_out_of_range_rejected(self):
        m = SpatialMachine(8)
        with pytest.raises(ValidationError):
            m.send([0], [8])

    def test_reset_costs(self):
        m = SpatialMachine(8)
        m.send(0, 5)
        m.reset_costs()
        assert m.energy == 0 and m.depth == 0 and m.messages == 0


class TestDepthModel:
    """The 1-port clock model: sends and receives serialize per processor."""

    def test_chain_depth(self):
        m = SpatialMachine(16)
        for i in range(5):
            m.send(i, i + 1)
        # a 5-hop relay is a chain of 5 dependent messages
        assert m.depth == 5

    def test_independent_sends_are_parallel(self):
        m = SpatialMachine(64)
        m.send(np.arange(0, 10), np.arange(10, 20))
        assert m.depth <= 2

    def test_fan_out_serializes(self):
        m = SpatialMachine(64)
        m.send(np.zeros(30, dtype=int), np.arange(1, 31))
        assert m.depth == 30

    def test_fan_in_serializes_bulk(self):
        m = SpatialMachine(64)
        m.send(np.arange(1, 31), np.zeros(30, dtype=int))
        assert m.depth == 30

    def test_fan_in_serializes_sequential_calls(self):
        m = SpatialMachine(64)
        for i in range(1, 31):
            m.send(i, 0)
        assert m.depth == 30

    def test_dependency_chains_compose(self):
        m = SpatialMachine(64)
        m.send(0, 1)   # 1 busy at time ~1
        m.send(1, 2)   # depends on receive
        m.send(2, 3)
        d3 = m.clock[3]
        assert d3 >= 3

    def test_clock_per_processor(self):
        m = SpatialMachine(64)
        m.send(0, 1)
        assert m.clock[2] == 0  # uninvolved processors don't advance


class TestRegisters:
    def test_alloc_free_cycle(self):
        r = RegisterFile(10, budget=2)
        a = r.alloc("x")
        assert a.shape == (10,)
        assert r.live == 1
        r.free("x")
        assert r.live == 0

    def test_budget_enforced(self):
        r = RegisterFile(4, budget=2)
        r.alloc("a")
        r.alloc("b")
        with pytest.raises(MemoryBudgetError):
            r.alloc("c")

    def test_double_alloc_rejected(self):
        r = RegisterFile(4)
        r.alloc("a")
        with pytest.raises(ValidationError):
            r.alloc("a")

    def test_free_unknown_rejected(self):
        r = RegisterFile(4)
        with pytest.raises(ValidationError):
            r.free("nope")

    def test_scope_frees_on_exit(self):
        r = RegisterFile(4, budget=3)
        with r.scope("x", "y") as (x, y):
            assert r.live == 2
            assert "x" in r and "y" in r
        assert r.live == 0

    def test_scope_single_name_yields_array(self):
        r = RegisterFile(4)
        with r.scope("solo") as arr:
            assert arr.shape == (4,)

    def test_peak_tracked(self):
        r = RegisterFile(4, budget=8)
        r.alloc("a")
        r.alloc("b")
        r.free("a")
        r.alloc("c")
        assert r.peak == 2

    def test_fill_and_dtype(self):
        r = RegisterFile(3)
        arr = r.alloc("f", dtype=np.float64, fill=1.5)
        assert arr.dtype == np.float64
        assert (arr == 1.5).all()

    def test_nested_scope_peak_accounting(self):
        r = RegisterFile(4, budget=8)
        with r.scope("a", "b"):
            assert r.live == 2
            with r.scope("c"):
                assert r.live == 3
                assert r.peak == 3
            assert r.live == 2
        assert r.live == 0
        assert r.peak == 3  # peak survives the unwinding

    def test_realloc_freed_name_gets_fresh_array(self):
        r = RegisterFile(4)
        first = r.alloc("x", fill=7)
        r.free("x")
        second = r.alloc("x")
        assert second is not first
        assert (second == 0).all()  # no stale contents leak through
        assert (first == 7).all()

    def test_budget_exactly_reached_is_legal(self):
        r = RegisterFile(4, budget=3)
        r.alloc("a")
        r.alloc("b")
        r.alloc("c")  # hits the budget exactly: allowed
        assert r.live == r.budget == r.peak == 3
        with pytest.raises(MemoryBudgetError):
            r.alloc("d")
        r.free("a")
        r.alloc("d")  # back at the cap after a free: allowed again
        assert r.live == 3

    def test_scope_releases_after_budget_error_inside(self):
        r = RegisterFile(4, budget=2)
        with pytest.raises(MemoryBudgetError):
            with r.scope("a", "b", "c"):
                pass  # pragma: no cover - alloc fails before entry
        assert r.live == 0  # partially-allocated scope fully unwound

    def test_names_and_items_reflect_allocation_order(self):
        r = RegisterFile(4)
        a = r.alloc("a")
        b = r.alloc("b")
        assert r.names() == ("a", "b")
        assert [(n, id(arr)) for n, arr in r.items()] == [
            ("a", id(a)), ("b", id(b))
        ]


class TestLedgerPhases:
    def test_phase_attribution(self):
        m = SpatialMachine(16)
        with m.phase("warmup"):
            m.send(0, 1)
        m.send(1, 2)
        summary = m.ledger.summary()
        assert summary["warmup"]["messages"] == 1
        assert summary["total"]["messages"] == 2

    def test_nested_phases_both_charged(self):
        m = SpatialMachine(16)
        with m.phase("outer"):
            with m.phase("inner"):
                m.send(0, 5)
        s = m.ledger.summary()
        assert s["outer"]["energy"] == s["inner"]["energy"] == m.energy

    def test_phase_depth_span(self):
        m = SpatialMachine(16)
        m.send(0, 1)
        before = m.depth
        with m.phase("work") as p:
            m.send(1, 2)
        assert p.depth == m.depth - before

    def test_reentrant_phase_accumulates(self):
        m = SpatialMachine(16)
        for _ in range(3):
            with m.phase("loop"):
                m.send(0, 1)
        assert m.ledger.summary()["loop"]["messages"] == 3

    def test_reentered_zero_cost_phase_keeps_original_depth_start(self):
        """Regression: a phase whose first entry charged nothing used to be
        treated as 'fresh' on re-entry, overwriting depth_start with the
        later clock and corrupting the depth span (union of entries)."""
        m = SpatialMachine(16)
        with m.phase("span"):
            pass  # first entry: no cost charged
        m.send(0, 1)
        m.send(1, 2)  # depth advances to 2 outside the phase
        with m.phase("span"):
            m.send(2, 3)
        p = m.ledger.phases["span"]
        assert p.depth_start == 0  # from the FIRST entry, not the re-entry
        assert p.depth_end == m.depth
        assert p.depth == m.depth

    def test_depth_only_phase_span_survives_reentry(self):
        """A phase that only wraps depth (its costs land in a sibling ledger
        phase or none at all) must still report the union span."""
        m = SpatialMachine(16)
        with m.phase("outer"):
            pass
        with m.phase("unrelated"):
            m.send(0, 1)
        before = m.depth
        with m.phase("outer"):
            pass
        p = m.ledger.phases["outer"]
        assert (p.depth_start, p.depth_end) == (0, before)

    def test_ledger_begin_end_phase_direct_api(self):
        from repro.machine import CostLedger

        ledger = CostLedger()
        ledger.begin_phase("a", 0)
        ledger.charge(10, 2)
        ledger.end_phase("a", 5)
        ledger.begin_phase("a", 7)  # re-entry must not reset depth_start
        ledger.end_phase("a", 9)
        p = ledger.phases["a"]
        assert (p.energy, p.messages) == (10, 2)
        assert (p.depth_start, p.depth_end, p.depth) == (0, 9, 9)

    def test_end_phase_unentered_is_tolerated(self):
        from repro.machine import CostLedger

        ledger = CostLedger()
        ledger.end_phase("ghost", 3)
        assert ledger.phases["ghost"].depth_end == 3
        assert ledger._active == []


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=256),
    k=st.integers(min_value=1, max_value=50),
    seed=st.integers(0, 10_000),
)
def test_property_energy_lower_bounds_depth_relationship(n, k, seed):
    """Energy ≥ number of remote messages; depth ≥ ceil(messages / n)."""
    rng = np.random.default_rng(seed)
    m = SpatialMachine(n)
    src = rng.integers(0, n, size=k)
    dst = rng.integers(0, n, size=k)
    m.send(src, dst)
    remote = int((src != dst).sum())
    assert m.messages == remote
    assert m.energy >= remote  # every remote hop covers ≥1 unit of distance
    if remote:
        assert m.depth >= 1
