"""Tests for benchmark normalization and the regression gate."""

import copy
import json

import pytest

from repro.analysis.bench import (
    compare_reports,
    derive_row_key,
    find_bench_files,
    load_bench,
    metric_kind,
    migrate_bench_files,
    normalize_bench,
    parse_ascii_table,
    parse_percent,
)
from repro.analysis.report import RunReport
from repro.analysis.reporting import format_table
from repro.errors import ValidationError

ROWS = [
    {"op": "sort", "n": 256, "energy/n^1.5": 8.7, "depth": 72},
    {"op": "sort", "n": 1024, "energy/n^1.5": 9.7, "depth": 110},
    {"op": "permute", "n": 256, "energy/n^1.5": 0.66, "depth": 2},
]


def bench_report(rows=None, **meta):
    data = {
        "schema": "repro.report/v1",
        "schema_version": 1,
        "kind": "benchmark",
        "meta": {"benchmark": "synthetic", **meta},
        "rows": copy.deepcopy(rows if rows is not None else ROWS),
    }
    return RunReport(normalize_bench(data))


def run_report(energy=1000, depth=50, phases=None):
    return RunReport(
        {
            "schema": "repro.report/v1",
            "schema_version": 1,
            "kind": "run",
            "meta": {},
            "totals": {"energy": energy, "messages": 10, "depth": depth},
            "phases": phases or {},
        }
    )


class TestHelpers:
    def test_parse_percent(self):
        assert parse_percent("10%") == pytest.approx(0.10)
        assert parse_percent("2.5%") == pytest.approx(0.025)
        assert parse_percent("0.1") == pytest.approx(0.1)
        assert parse_percent(0.2) == pytest.approx(0.2)
        with pytest.raises(ValidationError):
            parse_percent("lots")

    def test_metric_kind_on_real_column_names(self):
        assert metric_kind("energy") == "energy"
        assert metric_kind("energy/n^1.5") == "energy"
        assert metric_kind("E/(n·log2n)") == "energy"
        assert metric_kind("spatial_E") == "energy"
        assert metric_kind("depth") == "depth"
        assert metric_kind("D/log2n") == "depth"
        assert metric_kind("spatial_D") == "depth"
        assert metric_kind("E_ratio") is None  # ratios are informational
        assert metric_kind("n") is None
        assert metric_kind("op") is None

    def test_parse_ascii_table_roundtrip(self):
        text = "title line\n" + format_table(ROWS)
        parsed = parse_ascii_table(text)
        assert parsed == ROWS

    def test_parse_ascii_table_no_table(self):
        assert parse_ascii_table("E6: one-line summary, no table") == []

    def test_derive_row_key(self):
        assert derive_row_key(ROWS) == ["op", "n"]
        assert derive_row_key([{"contract": 1, "expand": 2}]) == []
        assert derive_row_key([]) == []


class TestNormalize:
    def test_populates_rows_from_table(self):
        legacy = {
            "schema": "repro.report/v1",
            "schema_version": 1,
            "kind": "benchmark",
            "meta": {"benchmark": "e3_heavy"},
            "rows": [],
            "table": "heading\n" + format_table(ROWS),
        }
        norm = normalize_bench(legacy)
        assert norm["rows"] == ROWS
        assert norm["row_key"] == ["op", "n"]

    def test_bare_rows_get_envelope(self):
        norm = normalize_bench({"rows": ROWS})
        assert norm["schema"] == "repro.report/v1"
        assert norm["kind"] == "benchmark"
        assert norm["row_key"] == ["op", "n"]

    def test_idempotent(self):
        norm = normalize_bench({"rows": ROWS, "table": "x"}, name="b")
        assert normalize_bench(copy.deepcopy(norm)) == norm

    def test_checked_in_artifacts_all_load(self):
        # the repo's own BENCH_*.json files are the compatibility corpus
        from pathlib import Path

        paths = find_bench_files(Path(__file__).parent.parent / "benchmarks/results")
        assert len(paths) >= 7
        for path in paths:
            report = load_bench(path)
            assert report.data["rows"], path
            assert "row_key" in report.data, path
            cmp = compare_reports(report, report)
            assert cmp.ok and cmp.entries, path

    def test_migrate_in_place(self, tmp_path):
        legacy = {
            "schema": "repro.report/v1",
            "schema_version": 1,
            "kind": "benchmark",
            "meta": {},
            "rows": [],
            "table": "t\n" + format_table(ROWS),
        }
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(legacy))
        assert migrate_bench_files([path]) == [path]
        on_disk = json.loads(path.read_text())
        assert on_disk["rows"] == ROWS
        assert on_disk["meta"]["benchmark"] == "x"


class TestCompareRows:
    def test_identical_reports_pass(self):
        cmp = compare_reports(bench_report(), bench_report())
        assert cmp.ok
        assert len(cmp.entries) == len(ROWS)
        assert not cmp.added and not cmp.removed

    def test_energy_regression_fails(self):
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["energy/n^1.5"] *= 1.2  # +20% > the 10% default gate
        cmp = compare_reports(bench_report(), bench_report(worse))
        assert not cmp.ok
        assert {r.column for r in cmp.regressions} == {"energy/n^1.5"}
        assert all(r.kind == "energy" for r in cmp.regressions)

    def test_regression_within_tolerance_passes(self):
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["energy/n^1.5"] *= 1.05
        assert compare_reports(bench_report(), bench_report(worse)).ok
        assert not compare_reports(
            bench_report(), bench_report(worse), max_energy_regress="1%"
        ).ok

    def test_improvement_always_passes(self):
        better = copy.deepcopy(ROWS)
        for row in better:
            row["energy/n^1.5"] *= 0.5
        assert compare_reports(bench_report(), bench_report(better)).ok

    def test_depth_gate_off_by_default(self):
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["depth"] *= 3
        assert compare_reports(bench_report(), bench_report(worse)).ok
        cmp = compare_reports(
            bench_report(), bench_report(worse), max_depth_regress="50%"
        )
        assert not cmp.ok and all(r.kind == "depth" for r in cmp.regressions)

    def test_added_and_removed_rows_reported_not_fatal(self):
        cmp = compare_reports(bench_report(ROWS[:2]), bench_report(ROWS[1:]))
        assert cmp.ok
        assert any("permute" in label for label in cmp.added)
        assert any("n=256" in label for label in cmp.removed)

    def test_keyless_rows_match_by_position(self):
        a = bench_report([{"contract": 100, "expand": 10, "total": 110}])
        b = bench_report([{"contract": 100, "expand": 10, "total": 110}])
        cmp = compare_reports(a, b)
        assert cmp.ok and cmp.entries[0]["row"] == "row[0]"

    def test_zero_baseline_counts_as_regression(self):
        a = bench_report([{"n": 8, "energy": 0}])
        b = bench_report([{"n": 8, "energy": 5}])
        cmp = compare_reports(a, b)
        assert not cmp.ok and cmp.regressions[0].increase == float("inf")

    def test_metric_kinds_override_gates_unconventional_columns(self):
        # column names carry no energy/depth hint → the explicit map gates them
        rows = [{"contract": 100, "expand": 10, "total": 110}]
        kinds = {"contract": "energy", "expand": "energy", "total": "energy"}
        worse = [{"contract": 130, "expand": 10, "total": 140}]

        def rep(r):
            return RunReport(normalize_bench({"rows": copy.deepcopy(r)},
                                             metric_kinds=kinds))

        assert compare_reports(rep(rows), rep(rows)).ok
        cmp = compare_reports(rep(rows), rep(worse))
        assert not cmp.ok
        assert {r.column for r in cmp.regressions} == {"contract", "total"}
        # without the map the same increase sails through unclassified
        assert compare_reports(bench_report(rows), bench_report(worse)).ok

    def test_checked_in_phase_split_artifact_is_gated(self):
        # the CI bench-regression job gates exactly this file; its energy
        # columns must actually be classified, or the gate is toothless
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks/results/BENCH_e6_phases.json"
        baseline = load_bench(path)
        worse = load_bench(path)
        worse.data = copy.deepcopy(worse.data)
        worse.data["rows"][0]["total"] = int(worse.data["rows"][0]["total"] * 1.2)
        cmp = compare_reports(baseline, worse)
        assert not cmp.ok
        assert cmp.regressions[0].column == "total"


class TestCompareRuns:
    def test_identical_runs_pass(self):
        rep = run_report(phases={"p": {"energy": 10, "messages": 2, "depth": 3}})
        assert compare_reports(rep, rep).ok

    def test_total_energy_regression_fails(self):
        cmp = compare_reports(run_report(energy=1000), run_report(energy=1200))
        assert not cmp.ok
        assert cmp.regressions[0].row == "phase=TOTAL"

    def test_phase_energy_regression_fails(self):
        a = run_report(phases={"p": {"energy": 100, "messages": 2, "depth": 3}})
        b = run_report(phases={"p": {"energy": 200, "messages": 2, "depth": 3}})
        cmp = compare_reports(a, b)
        assert not cmp.ok
        assert any(r.row == "phase=p" for r in cmp.regressions)

    def test_phase_only_in_one_run_is_added_removed(self):
        a = run_report(phases={"old": {"energy": 5, "messages": 1, "depth": 1}})
        b = run_report(phases={"new": {"energy": 5, "messages": 1, "depth": 1}})
        cmp = compare_reports(a, b)
        assert cmp.ok
        assert cmp.added == ["new"] and cmp.removed == ["old"]

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            compare_reports(run_report(), bench_report())


class TestCli:
    def test_cli_compare_identical_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_a.json"
        bench_report().save(path)
        assert main(["bench", "compare", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK — no regressions" in out

    def test_cli_compare_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        bench_report().save(a)
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["energy/n^1.5"] *= 1.2
        bench_report(worse).save(b)
        assert main(["bench", "compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out

    def test_cli_compare_custom_tolerance(self, tmp_path):
        from repro.cli import main

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        bench_report().save(a)
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["energy/n^1.5"] *= 1.2
        bench_report(worse).save(b)
        assert main(["bench", "compare", str(a), str(b),
                     "--max-energy-regress", "30%"]) == 0

    def test_cli_depth_gate_flag(self, tmp_path, capsys):
        # the depth gate is off by default and opt-in via --max-depth-regress
        from repro.cli import main

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        bench_report().save(a)
        worse = copy.deepcopy(ROWS)
        for row in worse:
            row["depth"] = int(row["depth"] * 1.5)
        bench_report(worse).save(b)
        assert main(["bench", "compare", str(a), str(b)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", str(a), str(b),
                     "--max-depth-regress", "10%"]) == 1
        out = capsys.readouterr().out
        assert "depth tolerance exceeded" in out

    def test_cli_wall_gate_flag(self, tmp_path, capsys):
        # wall metrics gate only when --max-wall-regress is given
        from repro.cli import main

        rows = [{"op": "sort", "n": 256, "wall_s": 1.0}]
        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        bench_report(rows).save(a)
        worse = copy.deepcopy(rows)
        worse[0]["wall_s"] = 2.0
        bench_report(worse).save(b)
        assert main(["bench", "compare", str(a), str(b)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", str(a), str(b),
                     "--max-wall-regress", "25%"]) == 1
        out = capsys.readouterr().out
        assert "wall tolerance exceeded" in out

    def test_cli_migrate(self, tmp_path, capsys):
        from repro.cli import main

        legacy = {
            "schema": "repro.report/v1",
            "schema_version": 1,
            "kind": "benchmark",
            "meta": {},
            "rows": [],
            "table": "t\n" + format_table(ROWS),
        }
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps(legacy))
        assert main(["bench", "migrate", str(tmp_path)]) == 0
        assert json.loads(path.read_text())["rows"] == ROWS

    def test_cli_migrate_empty_dir_errors(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "migrate", str(tmp_path)])


# --------------------------------------------------------------------------- #
# latency / throughput metric kinds (serving benchmarks)
# --------------------------------------------------------------------------- #


class TestServingMetricKinds:
    def test_latency_column_names(self):
        assert metric_kind("p50_ms") == "latency"
        assert metric_kind("p99_ms") == "latency"
        assert metric_kind("lca_p99_s") == "latency"
        assert metric_kind("latency_seconds") == "latency"
        assert metric_kind("ttfa_ms") == "latency"

    def test_throughput_column_names(self):
        assert metric_kind("qps") == "throughput"
        assert metric_kind("coalesced_qps") == "throughput"
        assert metric_kind("rps") == "throughput"
        assert metric_kind("throughput") == "throughput"

    def test_non_latency_lookalikes_unaffected(self):
        # a p-digit token must be delimited: "p99" yes, "op99"-style no
        assert metric_kind("speedup") is None  # ratio, informational
        assert metric_kind("energy/n^1.5") == "energy"
        assert metric_kind("wall_s") == "wall"

    def test_latency_gate_off_by_default_on_by_flag(self):
        rows = [{"scenario": "load", "n": 256, "p99_ms": 10.0, "qps": 100.0}]
        worse = copy.deepcopy(rows)
        worse[0]["p99_ms"] = 30.0
        assert compare_reports(bench_report(rows), bench_report(worse)).ok
        cmp = compare_reports(
            bench_report(rows), bench_report(worse), max_latency_regress="50%"
        )
        assert not cmp.ok
        assert all(r.kind == "latency" for r in cmp.regressions)

    def test_throughput_gate_is_inverted(self):
        rows = [{"scenario": "load", "n": 256, "qps": 100.0}]
        # qps DROP is the regression…
        worse = copy.deepcopy(rows)
        worse[0]["qps"] = 50.0
        cmp = compare_reports(
            bench_report(rows), bench_report(worse), max_throughput_regress="25%"
        )
        assert not cmp.ok
        reg = cmp.regressions[0]
        assert reg.kind == "throughput"
        assert "-50" in reg.describe()  # the drop renders with a minus sign
        # …and a qps INCREASE always passes, however large
        better = copy.deepcopy(rows)
        better[0]["qps"] = 10_000.0
        assert compare_reports(
            bench_report(rows), bench_report(better), max_throughput_regress="1%"
        ).ok

    def test_cli_latency_and_throughput_flags(self, tmp_path, capsys):
        from repro.cli import main

        rows = [{"scenario": "load", "n": 256, "p99_ms": 10.0, "qps": 100.0}]
        worse = copy.deepcopy(rows)
        worse[0]["p99_ms"] = 40.0
        worse[0]["qps"] = 20.0
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench_report(rows).save(a)
        bench_report(worse).save(b)
        # ungated by default (host-dependent, like wall)
        assert main(["bench", "compare", str(a), str(b)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", str(a), str(b),
                     "--max-latency-regress", "100%"]) == 1
        assert "latency" in capsys.readouterr().out
        assert main(["bench", "compare", str(a), str(b),
                     "--max-throughput-regress", "50%"]) == 1
        assert "throughput" in capsys.readouterr().out
