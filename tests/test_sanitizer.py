"""Tests for the runtime sanitizers: write-race detection under the
EREW/CREW/CRCW policies, delivery-order determinism checking, ghost-state
scanning, strict mode, and the findings report."""

import numpy as np
import pytest

from repro.errors import SanitizerError, ValidationError
from repro.machine import SpatialMachine
from repro.machine.sanitizer import (
    DeterminismSanitizer,
    Finding,
    GhostStateSanitizer,
    WriteRaceSanitizer,
    check_determinism,
    format_findings,
    sanitize_findings_report,
    save_findings_report,
)


def _machine(n=16):
    return SpatialMachine(n)


class TestWriteRace:
    def test_injected_write_race_detected(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        # two senders deliver different values to processor 3 in one step
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]))
        assert not san.clean
        (f,) = san.findings
        assert f.code == "SAN-RACE-WRITE"
        assert f.details["dst"] == 3
        assert f.details["writers"] == 2

    def test_unique_destinations_are_clean(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        m.send(np.array([0, 1, 2]), np.array([3, 4, 5]), np.array([1, 2, 3]))
        assert san.clean

    def test_declared_combiner_whitelists_reduce_step(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]),
               combiner="sum")
        assert san.clean

    def test_unknown_combiner_is_a_finding(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]),
               combiner="frobnicate")
        codes = {f.code for f in san.findings}
        assert "SAN-RACE-COMBINER" in codes

    def test_erew_flags_concurrent_reads(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="erew"))
        # one sender feeds two destinations: legal under crew, not erew
        m.send(np.array([0, 0]), np.array([3, 4]), np.array([7, 7]))
        codes = {f.code for f in san.findings}
        assert "SAN-RACE-READ" in codes

    def test_erew_flags_valueless_multi_delivery(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="erew"))
        m.send(np.array([0, 1]), np.array([3, 3]))  # no payload
        codes = {f.code for f in san.findings}
        assert "SAN-RACE-DELIVERY" in codes

    def test_crew_ignores_valueless_multi_delivery(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        m.send(np.array([0, 1]), np.array([3, 3]))
        assert san.clean

    def test_crcw_accepts_common_writes(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crcw"))
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([5, 5]))
        assert san.clean

    def test_crcw_flags_conflicting_writes(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crcw"))
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([5, 6]))
        (f,) = san.findings
        assert f.code == "SAN-RACE-WRITE"
        assert f.details["values"] == [5, 6]

    def test_allow_phases_skips_step(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew",
                                          allow_phases=("scatter",)))
        with m.phase("scatter"):
            m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]))
        assert san.clean

    def test_self_messages_never_race(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="erew"))
        m.send(np.array([3, 3]), np.array([3, 3]), np.array([1, 2]))
        assert san.clean  # local work emits no step

    def test_bad_policy_rejected(self):
        with pytest.raises(ValidationError):
            WriteRaceSanitizer(policy="qrcw")


class TestStrictMode:
    def test_strict_sanitizer_raises_on_first_finding(self):
        m = _machine()
        m.attach(WriteRaceSanitizer(policy="crew", strict=True))
        with pytest.raises(SanitizerError, match="SAN-RACE-WRITE"):
            m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]))

    def test_machine_strict_mode_attaches_sanitizers(self):
        m = SpatialMachine(16, strict=True)
        names = {s.name for s in m.sanitizers}
        assert names == {"write-race", "determinism"}
        with pytest.raises(SanitizerError):
            m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]))

    def test_machine_strict_policy_string(self):
        m = SpatialMachine(16, strict="erew")
        race = next(s for s in m.sanitizers if s.name == "write-race")
        assert race.policy == "erew"
        with pytest.raises(SanitizerError):
            m.send(np.array([0, 0]), np.array([3, 4]))

    def test_strict_clean_run_passes(self):
        m = SpatialMachine(16, strict=True)
        got = m.send(np.array([0, 1]), np.array([3, 4]), np.array([1, 2]))
        assert np.array_equal(got, [1, 2])


class TestDeterminism:
    def test_clean_on_ordinary_steps(self):
        m = _machine(64)
        san = m.attach(DeterminismSanitizer(trials=4))
        rng = np.random.default_rng(1)
        for _ in range(10):
            src = rng.integers(0, 64, size=32)
            dst = rng.integers(0, 64, size=32)
            m.send(src, dst)
        assert san.clean

    def test_legal_permutation_preserves_sender_program_order(self):
        san = DeterminismSanitizer(seed=7)
        rng = np.random.default_rng(0)
        for _ in range(25):
            src = rng.integers(0, 8, size=40)
            perm = san._legal_permutation(src)
            assert sorted(perm) == list(range(40))
            for s in np.unique(src):
                where = np.flatnonzero(src[perm] == s)
                # positions of sender s's messages, in output order, must
                # carry its original message indices ascending
                assert np.all(np.diff(perm[where]) > 0)

    def test_survives_external_clock_adjustment(self):
        from repro.machine.collectives import barrier

        m = _machine(16)
        san = m.attach(DeterminismSanitizer(trials=3))
        m.send(np.array([0, 1]), np.array([5, 6]))
        barrier(m)  # writes machine.clock wholesale
        m.send(np.array([5, 6]), np.array([0, 1]))
        assert san.clean

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValidationError):
            DeterminismSanitizer(trials=0)


class TestGhostState:
    def test_planted_ghost_array_detected(self):
        class Algo:
            pass

        m = _machine(16)
        algo = Algo()
        san = m.attach(GhostStateSanitizer({"algo": algo}))
        algo.stash = np.zeros(m.n)  # Θ(n) words outside the register file
        findings = san.finish(m)
        assert [f.code for f in findings] == ["SAN-GHOST-STATE"]
        assert findings[0].details["path"] == "algo.stash"

    def test_baseline_state_is_grandfathered(self):
        class Algo:
            pass

        m = _machine(16)
        algo = Algo()
        algo.preexisting = np.zeros(m.n)
        san = m.attach(GhostStateSanitizer({"algo": algo}))
        assert san.finish(m) == []

    def test_register_file_storage_is_not_ghost(self):
        m = _machine(16)
        holder = {"reg": None}
        san = m.attach(GhostStateSanitizer({"h": holder}))
        holder["reg"] = m.registers.alloc("tmp")
        assert san.finish(m) == []
        m.registers.free("tmp")

    def test_allow_patterns_exempt_structure(self):
        class Algo:
            pass

        m = _machine(16)
        algo = Algo()
        san = m.attach(GhostStateSanitizer({"algo": algo},
                                           allow=("*.cache",)))
        algo.cache = np.zeros(m.n)
        algo.stash = np.zeros(m.n)
        findings = san.finish(m)
        assert [f.details["path"] for f in findings] == ["algo.stash"]

    def test_non_n_arrays_ignored(self):
        class Algo:
            pass

        m = _machine(16)
        algo = Algo()
        san = m.attach(GhostStateSanitizer({"algo": algo}))
        algo.small = np.zeros(3)  # O(1)-ish scratch, not per-processor
        assert san.finish(m) == []

    def test_phase_exit_rescans(self):
        class Algo:
            pass

        m = _machine(16)
        algo = Algo()
        san = m.attach(GhostStateSanitizer({"algo": algo}))
        with m.phase("up"):
            algo.stash = np.zeros(m.n)
        assert not san.clean
        assert san.findings[0].phases == ("up",)


class TestDeliveryFuzzing:
    def test_permute_delivery_shuffles_within_destination_groups(self):
        m = SpatialMachine(16, permute_delivery=3)
        src = np.array([0, 1, 2, 4, 5])
        dst = np.array([3, 3, 3, 6, 6])
        vals = np.array([10, 20, 30, 40, 50])
        # try several sends: each destination keeps its own value multiset
        seen_orders = set()
        for _ in range(10):
            got = m.send(src, dst, vals)
            assert sorted(got[:3]) == [10, 20, 30]
            assert sorted(got[3:]) == [40, 50]
            seen_orders.add(tuple(got))
        assert len(seen_orders) > 1  # the order actually varies

    def test_check_determinism_passes_order_independent_algorithm(self):
        def build(permute):
            return SpatialMachine(16, permute_delivery=permute)

        def run(m):
            src = np.array([0, 1, 2])
            dst = np.array([3, 3, 3])
            got = m.send(src, dst, np.array([4, 5, 6]))
            out = np.zeros(m.n, dtype=np.int64)
            np.add.at(out, dst, got)  # commutative reduce: order-free
            return out

        assert check_determinism(build, run, trials=3) == []

    def test_check_determinism_catches_last_writer_wins(self):
        def build(permute):
            return SpatialMachine(16, permute_delivery=permute)

        def run(m):
            src = np.array([0, 1, 2])
            dst = np.array([3, 3, 3])
            got = m.send(src, dst, np.array([4, 5, 6]))
            out = np.zeros(m.n, dtype=np.int64)
            out[dst] = got  # last writer wins: delivery-order dependent
            return out

        findings = check_determinism(build, run, trials=4)
        assert findings
        assert {f.code for f in findings} == {"SAN-DET-RESULT"}


class TestWorkloadsClean:
    """The paper's algorithms must run clean under every sanitizer."""

    @pytest.mark.parametrize("mode", ["direct", "virtual"])
    def test_treefix_clean(self, mode):
        from repro.spatial import SpatialTree, treefix_sum
        from repro.trees import prufer_random_tree

        tree = prufer_random_tree(128, seed=3)
        st = SpatialTree.build(tree, mode=mode)
        sans = [
            st.machine.attach(WriteRaceSanitizer(policy="crew")),
            st.machine.attach(DeterminismSanitizer()),
            st.machine.attach(GhostStateSanitizer({"workload": st})),
        ]
        treefix_sum(st, np.arange(tree.n), seed=3)
        assert all(s.finish(st.machine) == [] for s in sans)

    def test_treefix_fuzzed_delivery_is_deterministic(self):
        from repro.spatial import SpatialTree, treefix_sum
        from repro.trees import prufer_random_tree

        tree = prufer_random_tree(96, seed=5)
        values = np.arange(tree.n)

        def build(permute):
            kwargs = {} if permute is None else {"permute_delivery": permute}
            return SpatialTree.build(tree, **kwargs)

        def run(st):
            return treefix_sum(st, values, seed=5)

        assert check_determinism(build, run, trials=2) == []

    def test_lca_clean(self):
        from repro.spatial import SpatialTree, lca_batch
        from repro.trees import random_attachment_tree

        tree = random_attachment_tree(128, seed=1)
        st = SpatialTree.build(tree)
        sans = [
            st.machine.attach(WriteRaceSanitizer(policy="crew")),
            st.machine.attach(DeterminismSanitizer()),
        ]
        us = np.arange(tree.n)
        vs = np.roll(us, 1)
        lca_batch(st, us, vs, seed=1)
        assert all(s.clean for s in sans)


class TestFindingsReport:
    def _raced(self):
        m = _machine()
        san = m.attach(WriteRaceSanitizer(policy="crew"))
        m.send(np.array([0, 1]), np.array([3, 3]), np.array([10, 20]))
        return san

    def test_report_schema_and_counts(self):
        san = self._raced()
        report = sanitize_findings_report(
            [san], meta={"workload": "unit"}, policy="crew"
        )
        assert report["schema"] == "repro.sanitize/v1"
        assert report["schema_version"] == 1
        assert report["clean"] is False
        assert report["sanitizers"] == {"write-race": 1}
        assert report["meta"] == {"workload": "unit"}
        (f,) = report["findings"]
        assert f["code"] == "SAN-RACE-WRITE"

    def test_clean_report(self):
        report = sanitize_findings_report([WriteRaceSanitizer()])
        assert report["clean"] is True
        assert report["findings"] == []

    def test_extra_findings_counted(self):
        extra = Finding(sanitizer="determinism", code="SAN-DET-RESULT",
                        message="x")
        report = sanitize_findings_report([WriteRaceSanitizer()],
                                          extra_findings=[extra])
        assert report["clean"] is False

    def test_save_and_reload(self, tmp_path):
        import json

        san = self._raced()
        path = save_findings_report(
            sanitize_findings_report([san]), tmp_path / "f.json"
        )
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.sanitize/v1"
        assert loaded["findings"][0]["details"]["dst"] == 3

    def test_format_findings(self):
        san = self._raced()
        text = format_findings(san.findings)
        assert "SAN-RACE-WRITE" in text
        assert format_findings([]) == "no findings"
