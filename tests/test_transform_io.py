"""Tests for the §III-D TRANSFORM (virtual trees) and the Newick I/O."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.layout import light_first_order
from repro.trees import (
    Tree,
    parse_newick,
    path_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
    to_newick,
    transform_tree,
)
from repro.trees.traversal import position_of


class TestTransform:
    def test_degree_bound_four(self, zoo_tree):
        vt = transform_tree(zoo_tree)
        assert vt.virtual_degree().max() <= 4

    def test_virtual_tree_is_spanning(self, zoo_tree):
        vt = transform_tree(zoo_tree)
        t_hat = vt.as_tree()
        assert t_hat.n == zoo_tree.n
        assert t_hat.root == zoo_tree.root
        # validates reachability of every vertex
        Tree(t_hat.parents.copy())

    def test_current_children_are_original_children(self, zoo_tree):
        vt = transform_tree(zoo_tree)
        for v in range(zoo_tree.n):
            kids = set(zoo_tree.children(v).tolist())
            for c in vt.cur[v]:
                if c >= 0:
                    assert int(c) in kids

    def test_appended_children_are_siblings(self, zoo_tree):
        vt = transform_tree(zoo_tree)
        parents = zoo_tree.parents
        for v in range(zoo_tree.n):
            for a in vt.app[v]:
                if a >= 0:
                    assert parents[int(a)] == parents[v]

    def test_every_nonroot_has_exactly_one_virtual_parent(self, zoo_tree):
        vt = transform_tree(zoo_tree)
        assert (vt.vparent >= 0).sum() == zoo_tree.n - 1
        assert vt.vparent[zoo_tree.root] == -1

    def test_star_relay_depth_logarithmic(self):
        n = 1025
        vt = transform_tree(star_tree(n))
        from repro.spatial.virtual_tree import compute_app_depth

        depth = compute_app_depth(vt)
        assert depth.max() <= 2 * int(np.ceil(np.log2(n))) + 2

    def test_lemma8_light_first_preserved(self, zoo_tree):
        """Lemma 8: T̂'s virtual children remain sorted by subtree size at
        the light-first positions, i.e. each vertex's virtual children sit
        later in light-first order than the vertex itself."""
        vt = transform_tree(zoo_tree)
        order = light_first_order(zoo_tree)
        pos = position_of(order)
        sizes = zoo_tree.subtree_sizes()
        for v in range(zoo_tree.n):
            vkids = vt.virtual_children(v)
            # children of v in T̂: current children come before appended
            # ones of the same family in light-first order only within
            # their sibling runs; the robust Lemma 8 statement we check:
            # each virtual child list is sorted by (size, position)
            if len(vkids) > 1:
                cur = [c for c in vt.cur[v] if c >= 0]
                app = [a for a in vt.app[v] if a >= 0]
                for group in (cur, app):
                    if len(group) == 2:
                        a, b = group
                        assert (sizes[a], pos[a]) <= (sizes[b], pos[b])

    def test_path_tree_transform_is_identity_like(self):
        t = path_tree(6)
        vt = transform_tree(t)
        assert (vt.app == -1).all()
        assert np.array_equal(vt.vparent, t.parents)

    def test_custom_child_key(self):
        t = star_tree(10)
        vt = transform_tree(t, child_key=np.arange(10))
        assert vt.virtual_degree().max() <= 4


class TestNewick:
    def test_roundtrip_zoo(self, zoo_tree):
        text = to_newick(zoo_tree)
        parsed, labels = parse_newick(text)
        assert parsed.n == zoo_tree.n
        # labels carry the original ids: rebuild the parent map and compare
        ids = np.array([int(l) for l in labels])
        back = np.full(zoo_tree.n, -1, dtype=np.int64)
        for v in range(parsed.n):
            p = parsed.parents[v]
            if p >= 0:
                back[ids[v]] = ids[p]
        assert np.array_equal(back, zoo_tree.parents)

    def test_parse_simple(self):
        t, labels = parse_newick("(A,B,(C,D)E)F;")
        assert t.n == 6
        assert labels[0] == "F"
        assert sorted(labels) == ["A", "B", "C", "D", "E", "F"]

    def test_parse_branch_lengths_ignored(self):
        t, labels = parse_newick("(A:0.1,B:0.2)C:0.0;")
        assert t.n == 3
        assert labels[0] == "C"

    def test_parse_single_leaf(self):
        t, labels = parse_newick("X;")
        assert t.n == 1 and labels == ["X"]

    def test_parse_rejects_garbage(self):
        for bad in ["", "(A,B", "A)B;", "A,B;"]:
            with pytest.raises(ValidationError):
                parse_newick(bad)

    def test_anonymous_middle_child_is_legal(self):
        t, labels = parse_newick("(A,,B);")
        assert t.n == 4
        assert labels == ["", "A", "", "B"]

    def test_anonymous_vertices(self):
        t, labels = parse_newick("(,);")
        assert t.n == 3
        assert labels == ["", "", ""]

    def test_deep_path_no_recursion_limit(self):
        deep = path_tree(5000)
        text = to_newick(deep)
        parsed, _ = parse_newick(text)
        assert parsed.n == 5000

    def test_labels_length_checked(self):
        with pytest.raises(ValidationError):
            to_newick(path_tree(3), labels=["a"])


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=150), seed=st.integers(0, 500))
def test_property_transform_preserves_descendant_sets(n, seed):
    """Appended relays never move a vertex outside its original family:
    the set of T-descendants reachable via T̂ equals the original one at
    the family-parent level (local broadcast correctness precondition)."""
    t = random_attachment_tree(n, seed=seed)
    vt = transform_tree(t)
    # in T̂, the T-parent of any vertex equals the family it receives from
    fam = vt.tree.parents
    for v in range(n):
        vp = vt.vparent[v]
        if vp < 0:
            continue
        if vt.is_appended[v]:
            assert fam[int(vp)] == fam[v]
        else:
            assert fam[v] == vp
