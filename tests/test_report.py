"""Tests for run reports, JSON/JSONL serialization, trace export, diffing."""

import json

import numpy as np
import pytest

from repro.analysis.report import (
    SCHEMA,
    SCHEMA_VERSION,
    RunRecorder,
    RunReport,
    chrome_trace_events,
    diff_reports,
    format_diff,
    format_report,
    save_chrome_trace,
)
from repro.errors import ValidationError
from repro.machine import SpatialMachine, attach_tracer
from repro.spatial import SpatialTree, treefix_sum
from repro.trees import prufer_random_tree


def run_instrumented(n=256, seed=3, with_tracer=False):
    tree = prufer_random_tree(n, seed=seed)
    st = SpatialTree.build(tree, seed=seed)
    recorder = st.machine.attach(RunRecorder())
    if with_tracer:
        attach_tracer(st.machine)
    treefix_sum(st, np.ones(n, dtype=np.int64), seed=seed)
    return st, recorder


class TestRunRecorder:
    def test_steps_sum_to_ledger_totals(self):
        st, rec = run_instrumented()
        assert sum(s["energy"] for s in rec.steps) == st.machine.energy
        assert sum(s["messages"] for s in rec.steps) == st.machine.messages
        assert len(rec.steps) == st.machine.steps

    def test_spans_nest_and_close(self):
        st, rec = run_instrumented()
        assert rec.spans, "treefix must produce phase spans"
        for span in rec.spans:
            assert span["depth_end"] >= span["depth_start"]
            assert span["stack"][-1] == span["name"]
            assert span["level"] == len(span["stack"]) - 1
        assert not rec._open

    def test_open_spans_truncated_at_current_depth(self):
        m = SpatialMachine(16)
        rec = m.attach(RunRecorder())
        with m.phase("open"):
            m.send(0, 1)
            spans = rec.finished_spans()
        assert spans[-1]["name"] == "open"
        assert spans[-1]["depth_end"] == m.depth

    def test_histograms_optional(self):
        m = SpatialMachine(64)
        lean = m.attach(RunRecorder(histograms=False))
        full = m.attach(RunRecorder())
        m.send(0, 9)
        assert "distance_histogram" not in lean.steps[0]
        assert sum(full.steps[0]["distance_histogram"]) == 1


class TestRunReport:
    def test_totals_equal_cost_ledger_exactly(self):
        st, rec = run_instrumented(with_tracer=True)
        rep = RunReport.from_machine(st.machine, recorder=rec)
        assert rep.totals["energy"] == st.machine.ledger.energy
        assert rep.totals["messages"] == st.machine.ledger.messages
        assert rep.totals["depth"] == st.machine.depth
        summary = st.machine.ledger.summary()
        for name, entry in rep.phases.items():
            assert entry == summary[name]

    def test_schema_version_stamped(self):
        rep = RunReport.from_machine(SpatialMachine(16))
        assert rep.data["schema"] == SCHEMA == "repro.report/v1"
        assert rep.data["schema_version"] == SCHEMA_VERSION

    def test_meta_merging(self):
        rep = RunReport.from_machine(SpatialMachine(16), meta={"seed": 7, "tree": "star"})
        assert rep.meta["seed"] == 7 and rep.meta["tree"] == "star"
        assert rep.meta["n"] == 16 and rep.meta["curve"] == "hilbert"

    def test_congestion_included_when_traced(self):
        st, rec = run_instrumented(with_tracer=True)
        rep = RunReport.from_machine(st.machine, recorder=rec)
        c = rep.data["congestion"]
        assert c["total_traversals"] == st.machine.energy + st.machine.messages
        assert 1 <= c["max_load"] <= c["total_traversals"]

    def test_json_roundtrip(self, tmp_path):
        st, rec = run_instrumented()
        rep = RunReport.from_machine(st.machine, recorder=rec, meta={"seed": 3})
        path = rep.save(tmp_path / "run.json")
        assert RunReport.load(path).data == rep.data

    def test_jsonl_roundtrip(self, tmp_path):
        st, rec = run_instrumented()
        rep = RunReport.from_machine(st.machine, recorder=rec)
        path = rep.save(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(rep.steps)  # header + one line per step
        assert RunReport.load(path).data == rep.data

    def test_table_report(self, tmp_path):
        rows = [{"order": "bfs", "energy": 10}, {"order": "dfs", "energy": 12}]
        rep = RunReport.table("layout", rows, meta={"n": 64})
        assert rep.kind == "layout"
        path = rep.save(tmp_path / "t.json")
        assert RunReport.load(path).data["rows"] == rows
        assert "bfs" in format_report(rep)

    def test_load_rejects_non_report(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            RunReport.load(p)

    def test_format_report_mentions_totals_and_phases(self):
        st, rec = run_instrumented(with_tracer=True)
        rep = RunReport.from_machine(st.machine, recorder=rec)
        text = format_report(rep)
        assert "totals:" in text and "congestion:" in text
        assert "treefix_bottom_up_contract" in text


class TestChromeTrace:
    def test_every_event_has_required_fields(self):
        _, rec = run_instrumented()
        events = chrome_trace_events(rec)
        assert events, "trace must not be empty"
        for ev in events:
            assert {"name", "ph", "ts"} <= set(ev)
            assert ev["ph"] in {"M", "X", "C"}

    def test_phase_slices_map_to_depth_clock(self):
        st, rec = run_instrumented()
        slices = [e for e in chrome_trace_events(rec) if e["ph"] == "X"]
        assert len(slices) == len(rec.spans)
        max_end = max(e["ts"] + e["dur"] for e in slices)
        assert max_end <= st.machine.depth
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)

    def test_slices_sorted_enclosing_first(self):
        _, rec = run_instrumented()
        slices = [e for e in chrome_trace_events(rec) if e["ph"] == "X"]
        keys = [(e["ts"], -e["dur"]) for e in slices]
        assert keys == sorted(keys)

    def test_counters_cumulative(self):
        st, rec = run_instrumented()
        counters = [e for e in chrome_trace_events(rec) if e["ph"] == "C"]
        assert counters[-1]["args"]["energy"] == st.machine.energy
        vals = [c["args"]["energy"] for c in counters]
        assert vals == sorted(vals)

    def test_saved_file_is_json_array(self, tmp_path):
        _, rec = run_instrumented()
        path = save_chrome_trace(rec, tmp_path / "run.trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        assert all({"name", "ph", "ts"} <= set(e) for e in data)


class TestDiff:
    def test_diff_per_phase_deltas(self):
        st_a, rec_a = run_instrumented(n=128)
        st_b, rec_b = run_instrumented(n=256)
        a = RunReport.from_machine(st_a.machine, recorder=rec_a)
        b = RunReport.from_machine(st_b.machine, recorder=rec_b)
        d = diff_reports(a, b)
        assert d["totals"]["energy"]["delta"] == b.totals["energy"] - a.totals["energy"]
        for name, entry in d["phases"].items():
            assert entry["energy"]["delta"] == (
                b.phases.get(name, {}).get("energy", 0)
                - a.phases.get(name, {}).get("energy", 0)
            )

    def test_diff_identical_reports_is_zero(self):
        st, rec = run_instrumented()
        rep = RunReport.from_machine(st.machine, recorder=rec)
        d = diff_reports(rep, rep)
        assert all(v["delta"] == 0 for v in d["totals"].values())

    def test_diff_rejects_table_reports(self):
        run = RunReport.from_machine(SpatialMachine(16))
        table = RunReport.table("layout", [])
        with pytest.raises(ValidationError):
            diff_reports(run, table)

    def test_format_diff_lists_all_phases(self):
        st, rec = run_instrumented()
        rep = RunReport.from_machine(st.machine, recorder=rec)
        text = format_diff(diff_reports(rep, rep))
        assert "TOTAL" in text
        for name in rep.phases:
            assert name in text

    def _phase_report(self, phases):
        return RunReport(
            {
                "schema": SCHEMA,
                "schema_version": SCHEMA_VERSION,
                "kind": "run",
                "meta": {},
                "totals": {"energy": 1, "messages": 1, "depth": 1},
                "phases": phases,
            }
        )

    def test_diff_marks_added_and_removed_phases(self):
        span = {"energy": 5, "messages": 2, "depth": 3}
        a = self._phase_report({"old": span, "both": span})
        b = self._phase_report({"new": span, "both": span})
        d = diff_reports(a, b)
        assert d["phases"]["old"]["status"] == "removed"
        assert d["phases"]["new"]["status"] == "added"
        assert d["phases"]["both"]["status"] == "common"
        # a removed phase diffs against zero, not a KeyError
        assert d["phases"]["old"]["energy"]["delta"] == -5
        assert d["phases"]["new"]["energy"]["delta"] == 5

    def test_format_diff_shows_phase_markers(self):
        span = {"energy": 5, "messages": 2, "depth": 3}
        a = self._phase_report({"old": span, "both": span})
        b = self._phase_report({"new": span, "both": span})
        lines = format_diff(diff_reports(a, b)).splitlines()
        by_phase = {}
        for line in lines:
            for name in ("old", "new", "both"):
                if f" {name} " in f" {line} ":
                    by_phase[name] = line
        assert by_phase["new"].lstrip().startswith("+")
        assert by_phase["old"].lstrip().startswith("-")
        assert not by_phase["both"].lstrip().startswith(("+", "-"))

    def test_format_diff_tolerates_legacy_diffs_without_status(self):
        # diffs produced before the status field existed must still render
        st, rec = run_instrumented()
        rep = RunReport.from_machine(st.machine, recorder=rec)
        d = diff_reports(rep, rep)
        for entry in d["phases"].values():
            entry.pop("status", None)
        assert "TOTAL" in format_diff(d)
