"""The always-on query service: correctness, admission control, cost audit.

What has to hold for ``repro serve`` to be trustworthy:

* coalesced answers are **bit-identical** to solo ``lca_batch`` runs and
  to the host-side binary-lifting oracle — merging users must never
  change anyone's answer;
* one merged window's model energy is **at most** the sum of the
  per-user solo batches it replaced (the coalescing win is a model-level
  claim, audited against the machine's cost ledger);
* warm boots replay the stored layout-creation plan and serve the same
  answers as cold boots;
* the HTTP surface maps the admission-control contract onto status codes
  (400 validation / 429 shed / 503 draining) and drains cleanly.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServeDrainingError, ServeQueueFullError, ValidationError
from repro.plans import PlanStore, make_tree
from repro.serving import QueryService, ServingServer, boot_service
from repro.spatial import SpatialTree, lca_batch
from repro.trees import BinaryLiftingLCA

N = 256
SEED = 5


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", N, SEED)


@pytest.fixture()
def service(tree):
    st = SpatialTree.build(tree, curve="hilbert", engine="batched")
    svc = QueryService(st, window_s=0.002, max_batch=4096, max_queue=256,
                       seed=SEED).start()
    yield svc
    svc.drain()


def queries(seed, k=40):
    rng = np.random.default_rng(seed)
    return rng.integers(0, N, size=k), rng.integers(0, N, size=k)


# --------------------------------------------------------------------------- #
# correctness
# --------------------------------------------------------------------------- #


class TestServiceCorrectness:
    def test_lca_matches_oracle_and_solo_run(self, service, tree):
        us, vs = queries(0)
        got = service.lca(us, vs)
        oracle = BinaryLiftingLCA(tree)
        assert np.array_equal(got, oracle.query_batch(us, vs))
        st_solo = SpatialTree.build(tree, curve="hilbert", engine="batched")
        assert np.array_equal(got, lca_batch(st_solo, us, vs, seed=SEED))

    def test_concurrent_clients_all_bit_identical(self, service, tree):
        oracle = BinaryLiftingLCA(tree)
        failures = []

        def client(i):
            us, vs = queries(i, k=25)
            got = service.lca(us, vs)
            if not np.array_equal(got, oracle.query_batch(us, vs)):
                failures.append(i)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        stats = service.stats
        assert stats.requests_total["lca"] == 12
        # coalescing actually merged concurrent requests into windows
        assert stats.windows_total <= 12
        assert stats.window_queries_total == 12 * 25

    def test_treefix_and_cuts_ops(self, service, tree):
        sums = service.treefix(np.ones(N))
        # the root's subtree is everything
        assert int(sums.max()) == N
        cuts = service.cuts(np.array([[0, N - 1]]))
        vertex, value = cuts.minimum(tree)
        assert 0 <= vertex < N and value >= 0

    def test_duplicate_queries_across_users_served_correctly(self, service, tree):
        us, vs = queries(1, k=10)
        oracle = BinaryLiftingLCA(tree).query_batch(us, vs)
        results = {}

        def client(name, u, v):
            results[name] = service.lca(u, v)

        # user B asks the same pairs with endpoints swapped
        a = threading.Thread(target=client, args=("a", us, vs))
        b = threading.Thread(target=client, args=("b", vs, us))
        a.start(); b.start(); a.join(); b.join()
        assert np.array_equal(results["a"], oracle)
        assert np.array_equal(results["b"], oracle)

    def test_validation_errors_raise_before_enqueue(self, service):
        with pytest.raises(ValidationError):
            service.submit("lca", {"us": [0], "vs": [N]})  # out of range
        with pytest.raises(ValidationError):
            service.submit("lca", {"us": [0, 1], "vs": [2]})  # length mismatch
        with pytest.raises(ValidationError):
            service.submit("treefix", {"values": [1.0] * (N - 1)})
        with pytest.raises(ValidationError):
            service.submit("nope", {})
        assert service.stats.requests_total == {}  # nothing was admitted


# --------------------------------------------------------------------------- #
# the coalescing cost audit
# --------------------------------------------------------------------------- #


class TestCoalescingEnergyAudit:
    def test_merged_window_energy_at_most_sum_of_solo_batches(self, tree):
        """The tentpole claim: one merged window ≤ Σ per-user solo batches,
        measured on the machine's own ledger."""
        per_user = [queries(i, k=30) for i in range(6)]
        # solo: each user pays for their own lca_batch pass (shared
        # prepared ranges/cover — the server's steady state either way)
        st = SpatialTree.build(tree, curve="hilbert", engine="batched")
        prepared = st.prepare_lca(seed=SEED)
        solo_energy = 0
        for us, vs in per_user:
            before = st.machine.snapshot()
            lca_batch(st, us, vs, seed=SEED, prepared=prepared)
            solo_energy += st.machine.snapshot()["energy"] - before["energy"]
        # merged: submit everyone before the worker starts, so one window
        # deterministically carries all six users
        st2 = SpatialTree.build(tree, curve="hilbert", engine="batched")
        svc = QueryService(st2, window_s=0.05, max_batch=4096, max_queue=256,
                           seed=SEED)
        pending = [svc.submit("lca", {"us": us, "vs": vs}) for us, vs in per_user]
        svc.start()
        for req in pending:
            req.wait(30)
        svc.drain()
        assert svc.stats.windows_total == 1
        merged_energy = svc.stats.window_energy_total
        assert merged_energy <= solo_energy
        # and it's a real saving, not a tie: six sweeps became one
        assert merged_energy < solo_energy

    def test_window_costs_come_from_the_ledger(self, tree):
        st = SpatialTree.build(tree, curve="hilbert", engine="batched")
        svc = QueryService(st, window_s=0.0, max_batch=4096, max_queue=256,
                           seed=SEED)
        after_prepare = st.machine.energy  # construction charged prepare_lca
        us, vs = queries(2, k=20)
        req = svc.submit("lca", {"us": us, "vs": vs})
        svc.start()
        req.wait(30)
        svc.drain()
        # the stats' energy total is exactly what the machine charged
        assert svc.stats.window_energy_total == st.machine.energy - after_prepare


# --------------------------------------------------------------------------- #
# boot paths
# --------------------------------------------------------------------------- #


class TestBootService:
    def test_cold_fallback_records_then_warm_boot_replays(self, tmp_path, tree):
        store = PlanStore(tmp_path / "plans")
        b1 = boot_service(shape="random", n=N, seed=SEED, store=store,
                          window_s=0.0, max_queue=64)
        assert b1.boot.mode == "cold_fallback"
        assert b1.boot.plan_key == ("layout_creation", N, "hilbert", "random")
        us, vs = queries(3)
        cold_answers = b1.service.lca(us, vs)
        b1.service.drain()

        b2 = boot_service(shape="random", n=N, seed=SEED, store=store,
                          window_s=0.0, max_queue=64)
        assert b2.boot.mode == "warm"
        warm_answers = b2.service.lca(us, vs)
        b2.service.drain()
        assert np.array_equal(cold_answers, warm_answers)
        # boot totals include the layout work on both paths
        assert b1.boot.totals["energy"] > 0
        assert b2.boot.totals["energy"] > 0

    def test_seed_mismatch_falls_back_cold(self, tmp_path):
        store = PlanStore(tmp_path / "plans")
        b1 = boot_service(shape="random", n=N, seed=SEED, store=store,
                          window_s=0.0, max_queue=64)
        b1.service.drain()
        b2 = boot_service(shape="random", n=N, seed=SEED + 1, store=store,
                          window_s=0.0, max_queue=64)
        assert b2.boot.mode == "cold_fallback"
        assert "seed" in (b2.boot.fallback_reason or "")
        b2.service.drain()

    def test_no_store_boots_cold(self):
        b = boot_service(shape="random", n=N, seed=SEED, store=None,
                         window_s=0.0, max_queue=64)
        assert b.boot.mode == "cold"
        b.service.drain()


# --------------------------------------------------------------------------- #
# admission control + drain
# --------------------------------------------------------------------------- #


class TestAdmissionControl:
    def test_queue_full_sheds(self, tree):
        st = SpatialTree.build(tree, curve="hilbert", engine="batched")
        svc = QueryService(st, window_s=0.05, max_batch=4096, max_queue=2,
                           seed=SEED)  # worker NOT started: queue backs up
        us, vs = queries(0, k=5)
        svc.submit("lca", {"us": us, "vs": vs})
        svc.submit("lca", {"us": us, "vs": vs})
        with pytest.raises(ServeQueueFullError):
            svc.submit("lca", {"us": us, "vs": vs})
        svc.start()
        svc.drain()

    def test_drain_completes_admitted_rejects_new(self, service):
        us, vs = queries(0, k=10)
        req = service.submit("lca", {"us": us, "vs": vs})
        service.drain()
        assert req.done.is_set() and req.error is None
        with pytest.raises(ServeDrainingError):
            service.submit("lca", {"us": us, "vs": vs})


# --------------------------------------------------------------------------- #
# the HTTP surface
# --------------------------------------------------------------------------- #


@pytest.fixture()
def server(tree):
    st = SpatialTree.build(tree, curve="hilbert", engine="batched")
    svc = QueryService(st, window_s=0.002, max_batch=4096, max_queue=256,
                       seed=SEED).start()
    srv = ServingServer(svc, port=0).start()
    yield srv
    srv.shutdown()


def post(url, route, payload, timeout=30):
    req = urllib.request.Request(
        url + route, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServingServer:
    def test_post_lca_roundtrip(self, server, tree):
        us, vs = queries(0, k=8)
        status, body = post(server.url, "/lca", {"us": us.tolist(), "vs": vs.tolist()})
        assert status == 200
        oracle = BinaryLiftingLCA(tree)
        assert body["lca"] == oracle.query_batch(us, vs).tolist()
        assert body["latency_seconds"] >= 0

    def test_post_treefix_and_cuts(self, server):
        status, body = post(server.url, "/treefix", {"values": [1.0] * N})
        assert status == 200 and max(body["sums"]) == N
        status, body = post(server.url, "/cuts", {"extra_edges": [[0, N - 1]]})
        assert status == 200 and "min_vertex" in body

    def test_validation_maps_to_400(self, server):
        status, body = post(server.url, "/lca", {"us": [0], "vs": [N]})
        assert status == 400 and "error" in body
        status, _ = post(server.url, "/lca", {"us": [0]})
        assert status == 400

    def test_unknown_post_route_404(self, server):
        status, body = post(server.url, "/frobnicate", {})
        assert status == 404 and "/lca" in body["endpoints"]

    def test_serving_endpoint_and_metrics(self, server):
        post(server.url, "/lca", {"us": [1], "vs": [2]})
        with urllib.request.urlopen(server.url + "/serving", timeout=10) as r:
            body = json.loads(r.read())
        assert body["service"]["stats"]["requests_total"]["lca"] >= 1
        assert body["service"]["coalescing"] is True
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            text = r.read().decode()
        for family in (
            "repro_serve_requests_total",
            "repro_serve_windows_total",
            "repro_serve_qps",
            "repro_serve_queue_depth",
            "repro_serve_batch_size",
            "repro_serve_latency_seconds",
            "repro_serve_window_energy_total",
        ):
            assert family in text, family

    def test_draining_maps_to_503(self, tree):
        st = SpatialTree.build(tree, curve="hilbert", engine="batched")
        svc = QueryService(st, window_s=0.0, max_batch=64, max_queue=8,
                           seed=SEED).start()
        srv = ServingServer(svc, port=0).start()
        try:
            svc.queue.drain()
            status, body = post(srv.url, "/lca", {"us": [1], "vs": [2]})
            assert status == 503 and "drain" in body["error"].lower()
        finally:
            srv.shutdown()

    def test_queue_full_maps_to_429(self, tree):
        st = SpatialTree.build(tree, curve="hilbert", engine="batched")
        svc = QueryService(st, window_s=0.05, max_batch=64, max_queue=1,
                           seed=SEED)  # worker not started: first fills it
        srv = ServingServer(svc, port=0).start()
        try:
            svc.submit("lca", {"us": [1], "vs": [2]})
            status, body = post(srv.url, "/lca", {"us": [3], "vs": [4]})
            assert status == 429 and "shed" in body["error"]
        finally:
            svc.start()
            srv.shutdown()
