"""Tests for linear orders and grid embeddings (paper §III-A, E1 ablations)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.layout import (
    LayoutMetrics,
    TreeLayout,
    available_orders,
    compare_layouts,
    compute_order,
    energy_scaling,
    heavy_first_order,
    is_light_first,
    light_first_order,
)
from repro.trees import (
    caterpillar_tree,
    path_tree,
    perfect_kary_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
)


class TestLightFirstOrder:
    def test_definition_satisfied(self, zoo_tree):
        order = light_first_order(zoo_tree)
        assert is_light_first(zoo_tree, order)

    def test_root_first(self, zoo_tree):
        assert light_first_order(zoo_tree)[0] == zoo_tree.root

    def test_children_positions_formula(self):
        """Exact §III-A check: c_i at position 1 + p_v + Σ_{j<i} s(c_j)."""
        t = prufer_random_tree(80, seed=1)
        order = light_first_order(t)
        pos = np.empty(t.n, dtype=np.int64)
        pos[order] = np.arange(t.n)
        sizes = t.subtree_sizes()
        for v in range(t.n):
            kids = t.children(v)
            kids = kids[np.argsort(sizes[kids], kind="stable")]
            expected = pos[v] + 1
            for c in kids:
                assert pos[c] == expected
                expected += sizes[c]

    def test_heavy_first_violates_light_first(self):
        t = random_attachment_tree(100, seed=2)
        assert not is_light_first(t, heavy_first_order(t))

    def test_bfs_violates_light_first_on_binary_tree(self):
        t = perfect_kary_tree(4)
        assert not is_light_first(t, t.bfs_order())

    def test_is_light_first_accepts_ties_swapped(self):
        # star: all children have size 1 — any child order is light-first
        t = star_tree(5)
        order = np.array([0, 4, 3, 2, 1])
        assert is_light_first(t, order)


class TestComputeOrder:
    def test_all_named_orders_are_permutations(self, zoo_tree):
        for name in available_orders():
            order = compute_order(zoo_tree, name, seed=3)
            assert np.array_equal(np.sort(order), np.arange(zoo_tree.n))

    def test_custom_permutation_accepted(self):
        t = path_tree(4)
        order = compute_order(t, np.array([3, 2, 1, 0]))
        assert list(order) == [3, 2, 1, 0]

    def test_bad_custom_rejected(self):
        t = path_tree(4)
        with pytest.raises(ValidationError):
            compute_order(t, np.array([0, 0, 1, 2]))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            compute_order(path_tree(3), "zigzag")


class TestTreeLayout:
    def test_build_defaults(self, zoo_tree):
        layout = TreeLayout.build(zoo_tree)
        assert layout.n == zoo_tree.n
        assert layout.curve.name == "hilbert"
        assert np.array_equal(layout.order[layout.position], np.arange(zoo_tree.n))

    def test_coordinates_unique(self, zoo_tree):
        layout = TreeLayout.build(zoo_tree)
        coords = layout.coordinates()
        assert len({(int(x), int(y)) for x, y in coords}) == zoo_tree.n

    def test_edge_distances_match_manual(self):
        t = random_attachment_tree(60, seed=5)
        layout = TreeLayout.build(t)
        d = layout.edge_distances()
        coords = layout.coordinates()
        edges = t.edges()
        manual = np.abs(coords[edges[:, 0]] - coords[edges[:, 1]]).sum(axis=1)
        assert np.array_equal(d, manual)
        assert layout.local_broadcast_energy() == int(manual.sum())

    def test_subtree_range_contiguous_for_light_first(self):
        t = random_attachment_tree(100, seed=6)
        layout = TreeLayout.build(t, order="light_first")
        lo, hi = layout.subtree_range()
        sizes = t.subtree_sizes()
        assert np.array_equal(hi - lo + 1, sizes)
        # every descendant position falls inside the range
        for v in range(0, t.n, 7):
            for u in range(t.n):
                if t.is_ancestor(v, u):
                    assert lo[v] <= layout.position[u] <= hi[v]

    def test_vertex_distance(self):
        t = path_tree(10)
        layout = TreeLayout.build(t)
        assert layout.vertex_distance(3, 3)[0] == 0
        assert (layout.vertex_distance(np.arange(9), np.arange(1, 10)) >= 1).all()

    def test_machine_matches_layout_geometry(self):
        t = path_tree(20)
        layout = TreeLayout.build(t, curve="zorder")
        m = layout.machine()
        assert m.side == layout.side
        assert m.curve.name == "zorder"

    def test_single_vertex(self):
        layout = TreeLayout.build(path_tree(1))
        assert layout.local_broadcast_energy() == 0


class TestPaperNegativeResults:
    """§III: the quantitative separations the paper states."""

    def test_bfs_bad_on_perfect_binary_tree(self):
        t = perfect_kary_tree(12)  # n = 8191
        good = LayoutMetrics.of(TreeLayout.build(t, order="light_first"))
        bad = LayoutMetrics.of(TreeLayout.build(t, order="bfs"))
        # light-first: constant mean; BFS: Ω(sqrt n) mean
        assert good.mean_distance < 4
        assert bad.mean_distance > np.sqrt(t.n) / 4

    def test_dfs_bad_on_caterpillar(self):
        t = caterpillar_tree(2**13 + 1)
        good = LayoutMetrics.of(TreeLayout.build(t, order="light_first"))
        bad = LayoutMetrics.of(TreeLayout.build(t, order="dfs"))
        assert good.mean_distance < 4
        assert bad.mean_distance > np.sqrt(t.n) / 4

    def test_light_first_linear_energy_all_curves(self):
        t = prufer_random_tree(4000, seed=8)
        for curve in ("hilbert", "peano", "zorder"):
            m = LayoutMetrics.of(TreeLayout.build(t, order="light_first", curve=curve))
            assert m.energy_per_vertex < 8, (curve, m)

    def test_random_layout_bad_everywhere(self):
        t = prufer_random_tree(4096, seed=9)
        m = LayoutMetrics.of(TreeLayout.build(t, order="random", curve="hilbert", seed=1))
        assert m.mean_distance > np.sqrt(t.n) / 4


class TestMetricsHelpers:
    def test_compare_layouts_rows(self):
        t = random_attachment_tree(64, seed=1)
        rows = compare_layouts(t, ["light_first", "bfs"], ["hilbert", "zorder"], seed=0)
        assert len(rows) == 4
        assert {r["order"] for r in rows} == {"light_first", "bfs"}

    def test_energy_scaling_series(self):
        rows = energy_scaling(lambda n: path_tree(n), [16, 64])
        assert [r["n"] for r in rows] == [16, 64]
        assert all(r["total_energy"] >= 0 for r in rows)

    def test_empty_tree_metrics(self):
        m = LayoutMetrics.of(TreeLayout.build(path_tree(1)))
        assert m.total_energy == 0 and m.mean_distance == 0.0


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=200), seed=st.integers(0, 1000))
def test_property_light_first_subtrees_contiguous(n, seed):
    """In light-first order every subtree is one contiguous position block
    — the property the LCA ranges (§VI-C) rely on."""
    t = random_attachment_tree(n, seed=seed)
    order = light_first_order(t)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    sizes = t.subtree_sizes()
    for v in rng_sample(n, seed):
        members = sorted(pos[u] for u in range(n) if t.is_ancestor(v, int(u)))
        assert members == list(range(pos[v], pos[v] + sizes[v]))


def rng_sample(n, seed, k=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=min(k, n))
