"""Exit-code contract of the analysis CLI: ``check``/``lint``/``sanitize``
return 0 when clean, 1 on findings, and 2 on usage errors — the convention
CI relies on.  Rendering flags (``--format``, ``--out``, ``--plan-safety``)
are exercised through the real argv path."""

import json

import pytest

from repro.cli import main

# flagged by the whole-program check (CHECK005) and by the lint (REPRO003)
HOT_LOOP = (
    "def fanout(machine, tree):\n"
    "    with machine.phase('fanout'):\n"
    "        for i in range(tree.n):\n"
    "            machine.send(i, tree.parent[i])\n"
)

# clean for the whole-program check, flagged by the lint alone (REPRO005)
LINT_ONLY = "def f(m):\n    m.ledger.charge(10, 1)\n"

CLEAN = "def f(machine):\n    with machine.phase('p'):\n        machine.send_batch([(0, 1)])\n"


@pytest.fixture()
def fixture_file(tmp_path):
    # nested under repro/spatial/ so path-scoped lint rules apply to it
    def write(source, name="fixture.py"):
        path = tmp_path / "repro" / "spatial" / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return str(path)

    return write


class TestCheckExitCodes:
    def test_clean_exits_zero(self, fixture_file, capsys):
        assert main(["check", fixture_file(CLEAN)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, fixture_file, capsys):
        assert main(["check", fixture_file(HOT_LOOP)]) == 1
        assert "CHECK005" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["check", "/no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_format_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--format", "yaml"])
        assert exc.value.code == 2

    def test_list_rules_exits_zero(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "CHECK005" in out and "scalar-send-hot-loop" in out

    def test_json_format_carries_plan_safety(self, fixture_file, capsys):
        assert main(["check", fixture_file(HOT_LOOP), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["code"] == "CHECK005"
        assert doc["plan_safety"]["schema"] == "repro.plan-safety/v1"
        assert doc["stats"]["findings_by_code"] == {"CHECK005": 1}

    def test_sarif_out_file(self, fixture_file, tmp_path, capsys):
        out = tmp_path / "check.sarif"
        rc = main(["check", fixture_file(HOT_LOOP), "--format", "sarif", "--out", str(out)])
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "CHECK005"

    def test_plan_safety_report_written(self, fixture_file, tmp_path):
        report = tmp_path / "ps.json"
        rc = main(["check", fixture_file(CLEAN), "--plan-safety", str(report)])
        assert rc == 0
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.plan-safety/v1"
        assert doc["totals"]["phases"] == 1

    def test_with_lint_catches_lint_only_findings(self, fixture_file, capsys):
        path = fixture_file(LINT_ONLY)
        assert main(["check", path]) == 0
        capsys.readouterr()
        assert main(["check", path, "--with-lint"]) == 1
        assert "REPRO005" in capsys.readouterr().out

    def test_with_lint_sarif_merges_both_tools(self, fixture_file, tmp_path):
        out = tmp_path / "all.sarif"
        rc = main(
            ["check", fixture_file(HOT_LOOP), "--with-lint", "--format", "sarif", "--out", str(out)]
        )
        assert rc == 1
        doc = json.loads(out.read_text())
        names = [r["tool"]["driver"]["name"] for r in doc["runs"]]
        assert names == ["repro-check", "repro-lint"]


class TestLintExitCodes:
    def test_clean_exits_zero(self, fixture_file):
        assert main(["lint", fixture_file(CLEAN)]) == 0

    def test_findings_exit_one(self, fixture_file, capsys):
        assert main(["lint", fixture_file(HOT_LOOP)]) == 1
        assert "REPRO003" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, fixture_file, capsys):
        assert main(["lint", fixture_file(HOT_LOOP), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.findings/v1"
        assert doc["tool"] == "repro-lint"
        assert doc["findings"][0]["code"] == "REPRO003"

    def test_sarif_out_file(self, fixture_file, tmp_path):
        out = tmp_path / "lint.sarif"
        assert main(["lint", fixture_file(HOT_LOOP), "--format", "sarif", "--out", str(out)]) == 1
        doc = json.loads(out.read_text())
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"][0]["ruleId"] == "REPRO003"


@pytest.mark.parametrize("engine", ["scalar", "batched"])
class TestSanitizeExitCodes:
    def test_clean_exits_zero(self, engine, capsys):
        assert main(["sanitize", "treefix", "--n", "64", "--engine", engine]) == 0

    def test_findings_exit_one(self, engine, capsys):
        # batched LCA queries concurrently read shared layer registers,
        # which the strict EREW policy reports as findings
        assert main(
            ["sanitize", "lca", "--n", "64", "--policy", "erew", "--engine", engine]
        ) == 1

    def test_bad_workload_exits_two(self, engine):
        with pytest.raises(SystemExit) as exc:
            main(["sanitize", "nope", "--engine", engine])
        assert exc.value.code == 2
