"""Shared fixtures: a zoo of tree shapes and seeded RNG plumbing.

The tree zoo deliberately covers every structural regime the paper's
arguments distinguish: paths (compress-only), stars (rake-only, unbounded
degree), caterpillars (DFS-adversarial), perfect binary trees
(BFS-adversarial), bounded-degree random trees, heavy-tailed random trees,
and the domain-shaped generators (phylogenies, decision trees).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trees import (
    Tree,
    birth_death_phylogeny,
    caterpillar_tree,
    decision_tree_shape,
    path_tree,
    perfect_kary_tree,
    preferential_attachment_tree,
    prufer_random_tree,
    random_attachment_tree,
    random_binary_tree,
    star_tree,
)

TREE_ZOO = {
    "single": lambda: path_tree(1),
    "pair": lambda: path_tree(2),
    "path64": lambda: path_tree(64),
    "star64": lambda: star_tree(64),
    "caterpillar65": lambda: caterpillar_tree(65),
    "perfect_binary": lambda: perfect_kary_tree(5),
    "perfect_ternary": lambda: perfect_kary_tree(3, k=3),
    "random_binary": lambda: random_binary_tree(150, seed=11),
    "random_attachment": lambda: random_attachment_tree(200, seed=12),
    "preferential": lambda: preferential_attachment_tree(150, seed=13),
    "prufer": lambda: prufer_random_tree(150, seed=14),
    "phylogeny": lambda: birth_death_phylogeny(80, seed=15),
    "decision_tree": lambda: decision_tree_shape(120, seed=16),
}


@pytest.fixture(params=sorted(TREE_ZOO), ids=sorted(TREE_ZOO))
def zoo_tree(request) -> Tree:
    """One tree per zoo shape (parametrized over all shapes)."""
    return TREE_ZOO[request.param]()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240521)


def brute_subtree_sum(tree: Tree, values: np.ndarray) -> np.ndarray:
    """O(n²) oracle: subtree sums by explicit descendant enumeration."""
    out = np.zeros(tree.n, dtype=np.int64)
    for v in range(tree.n):
        for u in range(tree.n):
            if tree.is_ancestor(v, u):
                out[v] += values[u]
    return out


def brute_path_sum(tree: Tree, values: np.ndarray) -> np.ndarray:
    """O(n²) oracle: root-to-vertex path sums by parent walking."""
    out = np.zeros(tree.n, dtype=np.int64)
    for v in range(tree.n):
        u = v
        while u >= 0:
            out[v] += values[u]
            u = int(tree.parents[u])
    return out


def brute_lca(tree: Tree, u: int, v: int) -> int:
    """O(n) oracle: LCA by ancestor-set intersection."""
    anc = set()
    x = u
    while x >= 0:
        anc.add(x)
        x = int(tree.parents[x])
    x = v
    while x not in anc:
        x = int(tree.parents[x])
    return x
