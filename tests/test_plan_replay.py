"""Replay-equivalence battery for the whole-workload plan compiler.

The property under test: for every workload × curve × tree-shape × seed,
``record`` (live batched run) → persist → reload into a fresh machine →
``replay`` (straight-line ``send_plan``) produces *bit-identical* results
and identical energy / depth / messages / steps to a fresh scalar-engine
run of the same seed-derived instance. ``replay(..., verify=True)`` runs
that scalar oracle internally and raises
:class:`~repro.errors.PlanDivergenceError` on any disagreement, so every
case here exercises the full differential chain.

Speculative workloads (random-mate list ranking, standalone and embedded
twice in layout creation) additionally validate every recorded RNG epoch
against a redrawn coin trace; the divergence-injection tests check the
fallback path re-records and converges.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import PlanKeyError, PlanSpeculationError
from repro.machine.machine import SpatialMachine
from repro.plans import (
    EpochOp,
    PlanStore,
    WorkloadPlanRecorder,
    execute_plan,
    load_plan,
    record,
    replay,
)

CURVES = ("hilbert", "zorder", "rowmajor", "boustrophedon")
TREE_SHAPES = ("path", "star", "caterpillar", "binary", "random", "prufer", "decision")

BATTERY_SETTINGS = settings(
    max_examples=35,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def roundtrip(workload, shape, n, seed, curve, tmp_path, *, strict_replay=False):
    """record → persist → reload fresh → replay → scalar-oracle verify."""
    store = PlanStore(tmp_path / "plans", capacity=4)
    res = record(workload, n=n, seed=seed, shape=shape, curve=curve, store=store)
    # decode the on-disk artifact from scratch: nothing of the recording
    # machine survives into the replay
    loaded = load_plan(res.path, expected_key=res.plan.key)
    rep = replay(loaded, verify=True, strict=strict_replay)
    assert not rep.fallback
    assert rep.verified
    assert rep.totals == res.plan.totals
    assert sorted(rep.results) == sorted(res.results)
    for name in res.results:
        np.testing.assert_array_equal(rep.results[name], res.results[name])
    return res, rep


# --------------------------------------------------------------------------- #
# the hypothesis battery: 6 workloads × 35 generated cases = 210 differential
# record/replay/oracle chains across curves, shapes, sizes and seeds
# --------------------------------------------------------------------------- #


tree_case = st.tuples(
    st.sampled_from(TREE_SHAPES),
    st.sampled_from(CURVES),
    st.integers(min_value=6, max_value=40),
    st.integers(min_value=0, max_value=2**20),
)


@BATTERY_SETTINGS
@given(case=tree_case)
def test_battery_treefix(case, tmp_path):
    shape, curve, n, seed = case
    roundtrip("treefix", shape, n, seed, curve, tmp_path)


@BATTERY_SETTINGS
@given(case=tree_case)
def test_battery_treefix_top_down(case, tmp_path):
    shape, curve, n, seed = case
    roundtrip("treefix_top_down", shape, n, seed, curve, tmp_path)


@BATTERY_SETTINGS
@given(case=tree_case)
def test_battery_layout_creation(case, tmp_path):
    shape, curve, n, seed = case
    res, _ = roundtrip("layout_creation", shape, n, seed, curve, tmp_path)
    # the pipeline embeds list ranking twice → speculative phases recorded,
    # and the two passes get distinct epoch-oracle contexts
    assert "list_rank_contract" in res.plan.speculative
    contexts = {op.context for op in res.plan.ops if isinstance(op, EpochOp)}
    assert contexts <= {"euler_tour_1", "euler_tour_2"}


@BATTERY_SETTINGS
@given(case=tree_case)
def test_battery_lca(case, tmp_path):
    shape, curve, n, seed = case
    roundtrip("lca", shape, n, seed, curve, tmp_path)


@BATTERY_SETTINGS
@given(
    shape=st.sampled_from(("uniform", "sorted", "reverse")),
    curve=st.sampled_from(CURVES),
    n=st.integers(min_value=4, max_value=48),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_battery_sort(shape, curve, n, seed, tmp_path):
    roundtrip("sort", shape, n, seed, curve, tmp_path)


@BATTERY_SETTINGS
@given(
    curve=st.sampled_from(CURVES),
    n=st.integers(min_value=4, max_value=48),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_battery_list_rank(curve, n, seed, tmp_path):
    res, _ = roundtrip("list_rank", "chain", n, seed, curve, tmp_path)
    assert res.plan.epoch_count > 0
    assert res.plan.speculative == (
        "list_rank_base", "list_rank_contract", "list_rank_expand",
    )


# --------------------------------------------------------------------------- #
# engines, sanitizers, and the recording engine itself
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("workload,shape", [
    ("treefix", "prufer"),
    ("treefix_top_down", "caterpillar"),
    ("lca", "binary"),
    ("list_rank", "chain"),
    ("sort", "uniform"),
])
def test_replay_under_strict_sanitizers(workload, shape, tmp_path):
    """Replays run clean under the write-race + determinism sanitizers."""
    roundtrip(workload, shape, 32, 5, "hilbert", tmp_path, strict_replay=True)


def test_strict_replay_is_payload_free():
    """layout_creation's compact phase is (known, pre-existing) not
    crew-clean *with payloads*: a strict live run raises. Replay re-issues
    the same message sets payload-free — accounting-identical, but with no
    values for the write-race sanitizer to flag — so a strict replay of
    the same plan completes with the recorded totals. This pins the
    documented asymmetry (plans replay accounting, not payload traffic)."""
    from repro.errors import SanitizerError

    with pytest.raises(SanitizerError):
        record("layout_creation", n=32, seed=5, shape="caterpillar", strict=True)
    res = record("layout_creation", n=32, seed=5, shape="caterpillar")
    m = SpatialMachine(res.plan.n, curve=res.plan.curve, side=res.plan.side,
                       engine="batched", strict=True)
    totals = execute_plan(res.plan, m)
    assert totals == res.plan.totals


@pytest.mark.parametrize("workload,shape", [
    ("treefix", "random"),
    ("lca", "binary"),
    ("list_rank", "chain"),
])
def test_scalar_recorded_plans_replay_identically(workload, shape, tmp_path):
    """Plans recorded on the scalar engine replay on the batched engine
    (and vice versa) with identical totals — accounting is engine-free."""
    store = PlanStore(tmp_path / "plans")
    res = record(workload, n=24, seed=11, shape=shape, engine="scalar", store=store)
    for engine in ("batched", "scalar"):
        rep = replay(res.plan, engine=engine, verify=True)
        assert rep.totals == res.plan.totals
        for name in res.results:
            np.testing.assert_array_equal(rep.results[name], res.results[name])


def test_replay_on_scalar_engine_machine(tmp_path):
    res = record("treefix", n=30, seed=2, shape="prufer")
    m = SpatialMachine(30, curve="hilbert", engine="scalar")
    totals = execute_plan(res.plan, m)
    assert totals == res.plan.totals


def test_replay_geometry_mismatch_rejected(tmp_path):
    res = record("sort", n=16, seed=1, shape="uniform")
    wrong = SpatialMachine(17, curve="hilbert", engine="batched")
    with pytest.raises(PlanKeyError):
        execute_plan(res.plan, wrong)
    wrong_curve = SpatialMachine(16, curve="zorder", engine="batched")
    with pytest.raises(PlanKeyError):
        execute_plan(res.plan, wrong_curve)


def test_recorder_is_exclusive_per_machine():
    from repro.errors import MachineStateError

    m = SpatialMachine(4, engine="batched")
    with WorkloadPlanRecorder(m):
        with pytest.raises(MachineStateError):
            with WorkloadPlanRecorder(m):
                pass  # pragma: no cover
    assert m.plan_recorder is None  # detached even after the nested failure


# --------------------------------------------------------------------------- #
# epoch-bounded speculation: injected divergence must trip the oracle and
# fall back to verified live execution
# --------------------------------------------------------------------------- #


def _tamper_first_epoch(plan):
    ops, done = [], False
    for op in plan.ops:
        if not done and isinstance(op, EpochOp):
            op = dataclasses.replace(op, digest="0" * 64)
            done = True
        ops.append(op)
    assert done, "plan has no epochs to tamper with"
    return dataclasses.replace(plan, ops=ops)


@pytest.mark.parametrize("workload,shape", [
    ("list_rank", "chain"),
    ("layout_creation", "prufer"),
])
def test_injected_coin_divergence_falls_back(workload, shape, tmp_path):
    store = PlanStore(tmp_path / "plans")
    res = record(workload, n=32, seed=9, shape=shape, store=store)
    bad = _tamper_first_epoch(res.plan)
    store.put(bad)  # overwrite the artifact with the diverging plan

    with pytest.raises(PlanSpeculationError):
        replay(bad, fallback=False)

    # fallback: live re-execution, verified against the scalar oracle,
    # and the store healed with a re-recorded plan
    rep = replay(res.plan.key, store=store, verify=True)
    assert rep.fallback and rep.verified
    assert rep.totals == res.plan.totals
    for name in res.results:
        np.testing.assert_array_equal(rep.results[name], res.results[name])

    again = replay(res.plan.key, store=store, verify=True)
    assert not again.fallback  # the healed artifact replays cleanly


def test_wrong_seed_epochs_diverge():
    """A plan replayed with a different seed in its epochs must not
    silently succeed — the oracle catches it."""
    res = record("list_rank", n=32, seed=9, shape="chain")
    lying = dataclasses.replace(res.plan, seed=10)
    with pytest.raises(PlanSpeculationError):
        replay(lying, fallback=False)


def test_replay_spans_emitted(tmp_path):
    """A SpanTracer attached to the replay machine sees a ``replay`` span
    wrapping the re-driven phase spans."""
    from repro.telemetry.spans import SpanTracer

    res = record("treefix", n=24, seed=4, shape="prufer")
    m = SpatialMachine(res.plan.n, curve=res.plan.curve, side=res.plan.side,
                       engine="batched")
    tracer = SpanTracer()
    m.attach(tracer)
    execute_plan(res.plan, m)
    tracer.close()
    spans = list(tracer.completed)
    kinds = {s.kind for s in spans}
    assert "replay" in kinds
    assert "phase" in kinds
    replay_spans = [s for s in spans if s.kind == "replay"]
    assert replay_spans[0].name == "replay:treefix"
