"""Tests for the public spatial Euler tour API (§IV steps 1–2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.machine import SpatialMachine
from repro.spatial import (
    euler_tour_list,
    spatial_euler_tour_ranks,
    spatial_subtree_sizes_via_tour,
)
from repro.trees import (
    edge_tour,
    path_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
)


class TestEulerTourList:
    def test_element_count(self, zoo_tree):
        if zoo_tree.n < 2:
            pytest.skip("needs an edge")
        tour = euler_tour_list(zoo_tree)
        assert tour.num_elements == 2 * (zoo_tree.n - 1)

    def test_successors_form_single_chain(self, zoo_tree):
        if zoo_tree.n < 2:
            pytest.skip("needs an edge")
        tour = euler_tour_list(zoo_tree)
        succ = tour.succ
        assert int((succ < 0).sum()) == 1  # one tail
        # walking from the head visits every element exactly once
        has_pred = np.zeros(len(succ), dtype=bool)
        has_pred[succ[succ >= 0]] = True
        head = int(np.flatnonzero(~has_pred)[0])
        seen = 0
        cur = head
        while cur >= 0:
            seen += 1
            cur = int(succ[cur])
        assert seen == len(succ)

    def test_chain_matches_sequential_edge_tour(self):
        t = random_attachment_tree(60, seed=1)
        tour = euler_tour_list(t)
        # walk the chain; each down element visits owner, each up element
        # leaves the owner — compare endpoint sequence to trees.edge_tour
        succ = tour.succ
        has_pred = np.zeros(len(succ), dtype=bool)
        has_pred[succ[succ >= 0]] = True
        cur = int(np.flatnonzero(~has_pred)[0])
        hops = []
        while cur >= 0:
            v = int(tour.owner[cur])
            if cur % 2 == 0:  # down-edge: parent -> v
                hops.append((int(t.parents[v]), v))
            else:  # up-edge: v -> parent
                hops.append((v, int(t.parents[v])))
            cur = int(succ[cur])
        expect = [tuple(row) for row in edge_tour(t)]
        assert hops == expect

    def test_single_vertex_rejected(self):
        with pytest.raises(ValidationError):
            euler_tour_list(path_tree(1))


class TestSpatialRanksAndSizes:
    def test_sizes_match_reference(self, zoo_tree):
        if zoo_tree.n < 2:
            pytest.skip("needs an edge")
        m = SpatialMachine(zoo_tree.n)
        sizes = spatial_subtree_sizes_via_tour(m, zoo_tree, seed=1)
        assert np.array_equal(sizes, zoo_tree.subtree_sizes())

    def test_arbitrary_placement(self, rng):
        t = prufer_random_tree(120, seed=2)
        m = SpatialMachine(120)
        sizes = spatial_subtree_sizes_via_tour(
            m, t, positions=rng.permutation(120), seed=3
        )
        assert np.array_equal(sizes, t.subtree_sizes())

    def test_ranks_are_permutation(self):
        t = star_tree(50)
        m = SpatialMachine(50)
        idx, tour = spatial_euler_tour_ranks(m, t, seed=4)
        assert np.array_equal(np.sort(idx), np.arange(tour.num_elements))

    def test_down_edge_precedes_up_edge(self, zoo_tree):
        if zoo_tree.n < 2:
            pytest.skip("needs an edge")
        m = SpatialMachine(zoo_tree.n)
        idx, tour = spatial_euler_tour_ranks(m, zoo_tree, seed=5)
        assert (idx[0::2] < idx[1::2]).all()

    def test_bad_positions_rejected(self):
        t = path_tree(4)
        m = SpatialMachine(4)
        with pytest.raises(ValidationError):
            spatial_euler_tour_ranks(m, t, positions=np.array([0, 0, 1, 2]))

    def test_energy_theta_n_three_halves(self):
        es = []
        for n in (256, 2048):
            t = prufer_random_tree(n, seed=6)
            m = SpatialMachine(n)
            spatial_subtree_sizes_via_tour(m, t, seed=7)
            es.append(m.energy)
        exponent = np.log(es[1] / es[0]) / np.log(2048 / 256)
        assert 1.2 <= exponent <= 1.7  # Corollary 2


@settings(max_examples=12, deadline=None)
@given(n=st.integers(min_value=2, max_value=120), seed=st.integers(0, 300))
def test_property_tour_sizes_always_match(n, seed):
    t = random_attachment_tree(n, seed=seed)
    m = SpatialMachine(n)
    sizes = spatial_subtree_sizes_via_tour(m, t, seed=seed)
    assert np.array_equal(sizes, t.subtree_sizes())
