"""Tests for random-mate list ranking (§IV, Theorem 5) and the §IV layout
creation pipeline (Theorem 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.layout import is_light_first, light_first_order
from repro.machine import SpatialMachine
from repro.spatial import create_light_first_layout, list_rank, ranks_from_head
from repro.trees import (
    path_tree,
    perfect_kary_tree,
    prufer_random_tree,
    random_attachment_tree,
    star_tree,
)


def random_list(k, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(k)
    succ = np.full(k, -1, dtype=np.int64)
    succ[perm[:-1]] = perm[1:]
    return perm, succ


class TestListRank:
    @pytest.mark.parametrize("k", [1, 2, 3, 10, 100, 777])
    def test_suffix_ranks_correct(self, k):
        perm, succ = random_list(k, k)
        m = SpatialMachine(k)
        res = list_rank(m, succ, seed=5)
        expect = np.empty(k, dtype=np.int64)
        expect[perm] = k - np.arange(k)
        assert np.array_equal(res.ranks, expect)

    def test_head_ranks(self):
        perm, succ = random_list(50, 1)
        m = SpatialMachine(50)
        res = list_rank(m, succ, seed=2)
        heads = ranks_from_head(res.ranks)
        assert np.array_equal(heads[perm], np.arange(50))

    def test_weighted_ranks(self):
        # list 0 -> 1 -> 2 with weights 5, 7, 9: suffix sums 21, 16, 9
        succ = np.array([1, 2, -1])
        m = SpatialMachine(3)
        res = list_rank(m, succ, weights=np.array([5, 7, 9]), seed=0)
        assert list(res.ranks) == [21, 16, 9]

    def test_rounds_logarithmic(self):
        k = 4096
        _, succ = random_list(k, 3)
        m = SpatialMachine(k)
        res = list_rank(m, succ, seed=7)
        assert res.rounds <= 4 * np.log2(k)
        assert res.base_size <= max(2, int(np.ceil(np.log2(k))))

    def test_energy_theta_n_three_halves(self):
        es = []
        for k in (256, 4096):
            _, succ = random_list(k, k)
            m = SpatialMachine(k)
            list_rank(m, succ, seed=1)
            es.append(m.energy)
        exponent = np.log(es[1] / es[0]) / np.log(4096 / 256)
        assert 1.2 <= exponent <= 1.7

    def test_depth_logarithmic(self):
        k = 4096
        _, succ = random_list(k, 9)
        m = SpatialMachine(k)
        list_rank(m, succ, seed=3)
        assert m.depth <= 20 * np.log2(k)

    def test_custom_elem_proc_shared_processors(self):
        # two elements per processor, as the Euler tour uses it
        k = 40
        perm, succ = random_list(k, 4)
        m = SpatialMachine(20)
        elem_proc = np.arange(k) // 2
        res = list_rank(m, succ, elem_proc=elem_proc, seed=5)
        expect = np.empty(k, dtype=np.int64)
        expect[perm] = k - np.arange(k)
        assert np.array_equal(res.ranks, expect)

    def test_rejects_bad_inputs(self):
        m = SpatialMachine(4)
        with pytest.raises(ValidationError):
            list_rank(m, np.array([], dtype=np.int64))
        with pytest.raises(ValidationError):
            list_rank(m, np.array([1, 1, -1, 2]))  # duplicate successor
        with pytest.raises(ValidationError):
            list_rank(m, np.array([1, -1]), weights=np.ones(3))

    def test_two_lists_rejected(self):
        m = SpatialMachine(4)
        # 0 -> 1, 2 -> 3 : two tails
        with pytest.raises(ValidationError):
            list_rank(m, np.array([1, -1, 3, -1]), seed=0)

    def test_deterministic_given_seed(self):
        _, succ = random_list(100, 6)
        r1 = list_rank(SpatialMachine(100), succ, seed=11)
        r2 = list_rank(SpatialMachine(100), succ, seed=11)
        assert np.array_equal(r1.ranks, r2.ranks)
        assert r1.rounds == r2.rounds


class TestLayoutCreation:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_tree(50),
            lambda: star_tree(50),
            lambda: perfect_kary_tree(5),
            lambda: random_attachment_tree(120, seed=2),
            lambda: prufer_random_tree(90, seed=3),
        ],
        ids=["path", "star", "pbt", "rand", "prufer"],
    )
    def test_matches_sequential_order(self, make):
        tree = make()
        res = create_light_first_layout(tree, seed=4)
        assert np.array_equal(res.layout.order, light_first_order(tree))
        assert is_light_first(tree, res.layout.order)

    def test_arbitrary_initial_placement(self):
        tree = random_attachment_tree(80, seed=5)
        rng = np.random.default_rng(0)
        res = create_light_first_layout(
            tree, seed=6, initial_positions=rng.permutation(80)
        )
        assert np.array_equal(res.layout.order, light_first_order(tree))

    def test_single_vertex(self):
        res = create_light_first_layout(path_tree(1))
        assert res.energy == 0

    def test_energy_matches_permutation_bound(self):
        es = []
        for n in (256, 2048):
            tree = prufer_random_tree(n, seed=7)
            res = create_light_first_layout(tree, seed=8)
            es.append(res.energy)
        exponent = np.log(es[1] / es[0]) / np.log(2048 / 256)
        assert 1.2 <= exponent <= 1.8  # Theorem 4: Θ(n^{3/2})

    def test_phase_breakdown_present(self):
        res = create_light_first_layout(random_attachment_tree(60, seed=9), seed=1)
        for phase in ("euler_tour_1", "child_sort", "euler_tour_2", "compact", "permute"):
            assert phase in res.phases, res.phases.keys()

    def test_rejects_bad_initial_positions(self):
        with pytest.raises(ValidationError):
            create_light_first_layout(
                path_tree(4), initial_positions=np.array([0, 0, 1, 2])
            )

    def test_works_on_zorder_curve(self):
        tree = random_attachment_tree(64, seed=10)
        res = create_light_first_layout(tree, curve="zorder", seed=2)
        assert res.layout.curve.name == "zorder"
        assert np.array_equal(res.layout.order, light_first_order(tree))


@settings(max_examples=15, deadline=None)
@given(k=st.integers(min_value=1, max_value=300), seed=st.integers(0, 1000))
def test_property_list_rank_is_permutation_of_suffix_counts(k, seed):
    perm, succ = random_list(k, seed)
    res = list_rank(SpatialMachine(k), succ, seed=seed + 1)
    assert np.array_equal(np.sort(res.ranks), np.arange(1, k + 1))


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=120), seed=st.integers(0, 300))
def test_property_layout_creation_always_light_first(n, seed):
    tree = random_attachment_tree(n, seed=seed)
    res = create_light_first_layout(tree, seed=seed + 1)
    assert is_light_first(tree, res.layout.order)
