"""Tests for the live telemetry stack: spans, watchdog, server, session, CLI."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.analysis.report import span_log_to_chrome_trace
from repro.errors import ValidationError
from repro.machine import SpatialMachine
from repro.spatial import SpatialTree, lca_batch, treefix_sum
from repro.telemetry import (
    SPAN_SCHEMA,
    DivergenceWatchdog,
    SpanTracer,
    TelemetryServer,
    TelemetrySession,
    load_span_jsonl,
)
from repro.trees import bottom_up_treefix, prufer_random_tree


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


def _run_treefix(n=512, *, engine="batched", mode="auto", seed=0, machine_hook=None):
    tree = prufer_random_tree(n, seed=seed)
    st = SpatialTree.build(tree, mode=mode, engine=engine)
    if machine_hook is not None:
        machine_hook(st.machine)
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=tree.n)
    out = treefix_sum(st, values, seed=seed)
    assert np.array_equal(out, bottom_up_treefix(tree, values))
    return st


class TestSpanTracer:
    def test_nested_phases_parented(self):
        m = SpatialMachine(64)
        tracer = m.attach(SpanTracer(workload="w"))
        rng = np.random.default_rng(0)
        with m.phase("outer"):
            m.send(rng.integers(0, 64, 8), rng.integers(0, 64, 8))
            with m.phase("inner"):
                m.send(rng.integers(0, 64, 8), rng.integers(0, 64, 8))
        m.detach(tracer)
        spans = {s.name: s for s in tracer.completed}
        assert spans["inner"].parent == spans["outer"].id
        assert spans["outer"].parent == spans["w"].id
        assert spans["w"].parent is None
        assert spans["inner"].stack == ("w", "outer", "inner")
        # costs roll up: the root saw everything the phases saw
        assert spans["w"].energy == m.energy
        assert spans["outer"].energy == m.energy
        assert spans["w"].depth_end == m.depth

    def test_batched_rounds_become_child_spans(self):
        tree = prufer_random_tree(512, seed=0)
        st = SpatialTree.build(tree, engine="batched")
        tracer = st.machine.attach(SpanTracer(workload="treefix", ring=100_000))
        rng = np.random.default_rng(0)
        treefix_sum(st, rng.integers(0, 100, size=tree.n), seed=0)
        st.machine.detach(tracer)
        by_id = {s.id: s for s in tracer.completed}
        batches = [s for s in tracer.completed if s.kind == "batch"]
        rounds = [s for s in tracer.completed if s.kind == "round"]
        assert batches, "batched engine must emit batch spans"
        assert rounds, "aggregated multi-round events must fold into round spans"
        for r in rounds:
            parent = by_id[r.parent]
            assert parent.kind == "batch"
            assert r.level == parent.level + 1
            assert r.stack[:-1] == parent.stack
        # per-batch: child rounds partition the batch's energy/messages
        for b in batches:
            kids = [r for r in rounds if r.parent == b.id]
            if kids:
                assert len(kids) == b.rounds
                assert sum(r.energy for r in kids) == b.energy
                assert sum(r.messages for r in kids) == b.messages
        # a batch span's parent is an open phase (or the workload root)
        for b in batches:
            assert by_id[b.parent].kind in ("phase", "workload")

    def test_midphase_attach_ignores_unmatched_exit(self):
        m = SpatialMachine(16)
        tracer = SpanTracer(workload="w")
        with m.phase("already_open"):
            m.attach(tracer)
            with m.phase("seen"):
                pass
        # the exit of "already_open" must not pop the workload root
        assert [s["name"] for s in tracer.open_stack()] == ["w"]
        with m.phase("after"):
            pass
        m.detach(tracer)
        names = [s.name for s in tracer.completed]
        assert names == ["seen", "after", "w"]
        by_name = {s.name: s for s in tracer.completed}
        assert by_name["seen"].parent == by_name["w"].id
        assert by_name["after"].parent == by_name["w"].id

    def test_midphase_detach_truncates_open_spans(self):
        m = SpatialMachine(16)
        tracer = m.attach(SpanTracer(workload="w"))
        with m.phase("p"):
            m.detach(tracer)  # mid-phase: must truncate, not corrupt
        assert tracer.open_stack() == []
        names = [s.name for s in tracer.completed]
        assert sorted(names) == ["p", "w"]
        # machine keeps running fine afterwards
        with m.phase("later"):
            m.send(np.array([0, 1]), np.array([2, 3]))
        assert m.steps == 1

    def test_jsonl_stream_and_chrome_export(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tree = prufer_random_tree(256, seed=0)
        st = SpatialTree.build(tree, engine="batched")
        tracer = st.machine.attach(SpanTracer(workload="treefix", jsonl_path=path))
        rng = np.random.default_rng(0)
        treefix_sum(st, rng.integers(0, 100, size=tree.n), seed=0)
        st.machine.detach(tracer)
        header, spans = load_span_jsonl(path)
        assert header["schema"] == SPAN_SCHEMA
        assert header["workload"] == "treefix"
        assert header["machine"]["engine"] == "batched"
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        for s in spans:
            assert s["parent"] is None or s["parent"] in known
            assert s["depth_end"] >= s["depth_start"]
            assert s["wall_end"] >= s["wall_start"]
            assert s["kind"] in ("workload", "phase", "batch", "round", "alert")
        # the workload root streams last (closed at detach) and covers the run
        assert spans[-1]["kind"] == "workload"
        assert spans[-1]["depth_end"] == st.machine.depth
        trace = tmp_path / "spans.trace.json"
        span_log_to_chrome_trace(path, trace)
        events = json.loads(trace.read_text())
        assert all("name" in e and "ph" in e and "ts" in e for e in events)
        assert any(e["ph"] == "X" and e.get("cat") == "round" for e in events)

    def test_bad_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"span": {}}\n')
        with pytest.raises(ValidationError):
            load_span_jsonl(path)

    def test_explicit_span_and_alert(self):
        tracer = SpanTracer()
        with tracer.span("manual", kind="workload"):
            tracer.alert("oops", args={"detail": 1})
        spans = {s.name: s for s in tracer.completed}
        assert spans["oops"].kind == "alert"
        assert spans["oops"].parent == spans["manual"].id
        assert tracer.alerts_total == 1

    def test_progress_percent(self):
        m = SpatialMachine(16)
        tracer = m.attach(SpanTracer(workload="w", planned_phases=4))
        with m.phase("a"):
            pass
        with m.phase("b"):
            pass
        prog = tracer.progress()
        assert prog["span_stack"] == ["w"]
        assert prog["completed_top_level_phases"] == 2
        assert prog["percent"] == 50.0
        m.detach(tracer)

    def test_ring_evicts_oldest(self):
        m = SpatialMachine(16)
        tracer = m.attach(SpanTracer(workload="w", ring=3))
        for i in range(6):
            with m.phase(f"p{i}"):
                pass
        names = [s.name for s in tracer.completed]
        assert names == ["p3", "p4", "p5"]  # oldest evicted, capacity held
        assert len(tracer) == 3
        assert tracer.spans_total["phase"] == 6  # cumulative survives eviction
        m.detach(tracer)

    def test_progress_monotone_after_eviction(self):
        # completed-top-level counting must not rely on the ring: once old
        # spans are evicted the percentage has to keep climbing, not reset
        m = SpatialMachine(16)
        tracer = m.attach(SpanTracer(workload="w", ring=2, planned_phases=8))
        percents = []
        for i in range(8):
            with m.phase(f"p{i}"):
                pass
            percents.append(tracer.progress()["percent"])
        assert percents == sorted(percents)
        assert percents[-1] == 100.0
        assert tracer.progress()["completed_top_level_phases"] == 8
        m.detach(tracer)

    def test_batch_span_wall_width_from_event(self):
        # with a wall profiler attached the engine annotates events with
        # wall_ns; batch spans then get real width on the wall axis
        from repro.machine import KernelWallProfiler

        m = SpatialMachine(64)
        m.attach(KernelWallProfiler())
        tracer = m.attach(SpanTracer(workload="w"))
        rng = np.random.default_rng(0)
        with m.phase("p"):
            m.send(rng.integers(0, 64, 32), rng.integers(0, 64, 32))
        m.detach(tracer)
        batches = [s for s in tracer.completed if s.kind == "batch"]
        assert batches
        assert all(s.wall_end > s.wall_start for s in batches)

    def test_batch_span_zero_width_without_profiler(self):
        m = SpatialMachine(64)
        tracer = m.attach(SpanTracer(workload="w"))
        rng = np.random.default_rng(0)
        with m.phase("p"):
            m.send(rng.integers(0, 64, 32), rng.integers(0, 64, 32))
        m.detach(tracer)
        batches = [s for s in tracer.completed if s.kind == "batch"]
        assert all(s.wall_end == s.wall_start for s in batches)


class TestWatchdog:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    @pytest.mark.parametrize("mode", ["direct", "virtual"])
    def test_treefix_clean_on_both_engines(self, engine, mode):
        hooked = {}

        def hook(machine):
            hooked["wd"] = machine.attach(DivergenceWatchdog(sample=1))

        _run_treefix(n=256, engine=engine, mode=mode, machine_hook=hook)
        wd = hooked["wd"]
        snap = wd.snapshot()
        assert snap["checks"] > 0
        assert snap["alerts"] == 0 and snap["clean"]
        assert snap["rounds_checked"] > 0
        assert snap["messages_checked"] > 0

    def test_lca_clean(self):
        tree = prufer_random_tree(256, seed=1)
        st = SpatialTree.build(tree, engine="batched")
        wd = st.machine.attach(DivergenceWatchdog(sample=1))
        rng = np.random.default_rng(1)
        us, vs = rng.permutation(tree.n), rng.permutation(tree.n)
        lca_batch(st, us, vs, seed=1)
        assert wd.checks_total > 0 and wd.clean

    def test_sort_clean(self):
        from repro.machine.routing import bitonic_sort

        m = SpatialMachine(256, engine="batched")
        wd = m.attach(DivergenceWatchdog(sample=1))
        keys = np.random.default_rng(0).integers(0, 1000, size=256).astype(np.int64)
        with m.phase("bitonic_sort"):
            got, _ = bitonic_sort(m, keys)
        assert np.array_equal(got, np.sort(keys))
        assert wd.checks_total > 0 and wd.clean

    def test_detects_injected_energy(self):
        tracer = SpanTracer(workload="w")

        def hook(machine):
            machine.attach(tracer)
            machine.attach(
                DivergenceWatchdog(sample=1, tracer=tracer, _inject_energy=7)
            )

        st = _run_treefix(n=256, engine="batched", machine_hook=hook)
        wd = next(
            i for i in st.machine._instruments if isinstance(i, DivergenceWatchdog)
        )
        assert not wd.clean
        assert all(f.dimension == "energy" for f in wd.findings)
        assert all(f.observed - f.expected == 7 for f in wd.findings)
        # the finding surfaced as an alert span through the tracer
        alerts = [s for s in tracer.completed if s.kind == "alert"]
        assert alerts and alerts[0].name.startswith("divergence:")
        assert alerts[0].args["observed"] - alerts[0].args["expected"] == 7

    def test_detects_injected_depth(self):
        def hook(machine):
            machine.attach(DivergenceWatchdog(sample=1, _inject_depth=3))

        st = _run_treefix(n=256, engine="batched", machine_hook=hook)
        wd = next(
            i for i in st.machine._instruments if isinstance(i, DivergenceWatchdog)
        )
        assert not wd.clean
        assert {f.dimension for f in wd.findings} == {"depth"}

    def test_sample_zero_disables(self):
        def hook(machine):
            machine.attach(DivergenceWatchdog(sample=0))

        st = _run_treefix(n=128, engine="batched", machine_hook=hook)
        wd = next(
            i for i in st.machine._instruments if isinstance(i, DivergenceWatchdog)
        )
        assert wd.checks_total == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValidationError):
            DivergenceWatchdog(sample=-1)

    def test_publish_counters(self):
        from repro.analysis.metrics import MetricsRegistry

        def hook(machine):
            machine.attach(DivergenceWatchdog(sample=1))

        st = _run_treefix(n=128, engine="batched", machine_hook=hook)
        wd = next(
            i for i in st.machine._instruments if isinstance(i, DivergenceWatchdog)
        )
        reg = MetricsRegistry()
        wd.publish(reg)
        text = reg.render_prometheus()
        assert f"repro_divergence_checks_total {wd.checks_total}" in text
        assert "repro_divergence_alerts_total 0" in text
        assert "repro_divergence_clean 1" in text


class TestServerAndSession:
    def test_endpoints_and_exposition(self):
        tree = prufer_random_tree(256, seed=0)
        st = SpatialTree.build(tree, engine="batched")
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, size=tree.n)
        with TelemetrySession(
            st.machine, port=0, workload="treefix", watchdog_sample=1
        ) as tel:
            treefix_sum(st, values, seed=0)
            status, ctype, body = _get(tel.url + "/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            assert "repro_divergence_checks_total" in body
            assert "repro_energy_total" in body
            assert "repro_plan_cache_hits_total" in body
            assert 'repro_machine_info{curve="hilbert"' in body
            # exactly-once TYPE per family, and a second scrape must not
            # double any monotone total (fresh registry per scrape)
            types = [ln.split()[2] for ln in body.splitlines() if ln.startswith("# TYPE")]
            names = [ln.split()[2] for ln in body.splitlines() if ln.startswith("# TYPE")]
            assert len(names) == len(set(names))
            assert len(types) == len(names)
            _, _, body2 = _get(tel.url + "/metrics")
            line = next(
                ln for ln in body2.splitlines() if ln.startswith("repro_energy_total")
            )
            assert int(line.split()[1]) == st.machine.energy
            status, _, health = _get(tel.url + "/health")
            health = json.loads(health)
            assert health["status"] == "running"
            assert health["machine"]["engine"] == "batched"
            assert health["watchdog"]["clean"]
            _, _, prog = _get(tel.url + "/progress")
            prog = json.loads(prog)
            assert prog["span_stack"] == ["treefix"]
            assert prog["totals"]["energy"] == st.machine.energy
            _, _, spans = _get(tel.url + "/spans?limit=5")
            spans = json.loads(spans)
            assert spans["schema"] == SPAN_SCHEMA
            assert spans["count"] <= 5
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(tel.url + "/nope")
            assert err.value.code == 404

    def test_serves_while_executing(self):
        # the ISSUE acceptance run: treefix n=2^14, batched, answering
        # /metrics and /progress mid-execution
        tree = prufer_random_tree(2**14, seed=1)
        st = SpatialTree.build(tree, engine="batched")
        rng = np.random.default_rng(1)
        values = rng.integers(0, 100, size=tree.n)
        with TelemetrySession(st.machine, port=0, workload="treefix") as tel:
            done = threading.Event()
            out: dict = {}

            def run():
                try:
                    out["result"] = treefix_sum(st, values, seed=1)
                finally:
                    done.set()

            worker = threading.Thread(target=run)
            worker.start()
            mid_run = 0
            while not done.is_set():
                status, _, _ = _get(tel.url + "/metrics")
                assert status == 200
                status, _, prog = _get(tel.url + "/progress")
                assert status == 200 and json.loads(prog)["status"] == "running"
                if not done.is_set():
                    mid_run += 1
            worker.join()
            assert mid_run > 0, "server never answered while the run executed"
        assert np.array_equal(out["result"], bottom_up_treefix(tree, values))

    def test_session_detaches_cleanly(self):
        m = SpatialMachine(64)
        before = list(m._instruments)
        with TelemetrySession(m, port=0, workload="w") as tel:
            assert tel.url is not None
            with m.phase("p"):
                m.send(np.array([0, 1]), np.array([2, 3]))
        assert m._instruments == before
        assert m.tracer is None
        assert m.instrument_errors == []
        summary = tel.summary()
        assert summary["spans"]["phase"] == 1
        assert summary["watchdog"]["clean"]

    def test_session_congestion_tracer(self):
        m = SpatialMachine(64)
        with TelemetrySession(m, congestion=True, watchdog_sample=0) as tel:
            assert m.tracer is not None
            with m.phase("p"):
                m.send(np.array([0, 1]), np.array([2, 3]))
            server = TelemetryServer(m, port=0, span_tracer=tel.tracer).start()
            try:
                _, _, body = _get(server.url + "/metrics")
                assert "repro_congestion_traversals_total" in body
            finally:
                server.stop()
        assert m.tracer is None  # session removes the tracer it attached

    def test_server_without_machine(self):
        with TelemetryServer(port=0) as server:
            _, _, health = _get(server.url + "/health")
            assert json.loads(health)["status"] == "running"
            _, _, body = _get(server.url + "/metrics")
            assert "repro_telemetry_uptime_seconds" in body

    def test_unknown_endpoint_404_lists_routes(self):
        with TelemetryServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/definitely/not/here")
            assert err.value.code == 404
            payload = json.loads(err.value.read().decode())
            assert "/metrics" in payload["endpoints"]

    def test_spans_bad_limit_is_400(self):
        with TelemetryServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/spans?limit=banana")
            assert err.value.code == 400
            payload = json.loads(err.value.read().decode())
            assert "limit" in payload["error"]
            # well-formed limits still serve (including 0 and negatives
            # clamped to 0)
            status, _, body = _get(server.url + "/spans?limit=0")
            assert status == 200 and json.loads(body)["count"] == 0

    def test_session_extra_publishers(self):
        m = SpatialMachine(64)

        def publish_custom(registry):
            registry.gauge("repro_custom_probe", "test hook").set(42)

        with TelemetrySession(
            m, port=0, workload="w", watchdog_sample=0,
            extra_publishers=(publish_custom,),
        ) as tel:
            _, _, body = _get(tel.url + "/metrics")
        assert "repro_custom_probe 42" in body

    def test_mark_done_flips_health(self):
        with TelemetryServer(port=0) as server:
            server.mark_done()
            _, _, health = _get(server.url + "/health")
            assert json.loads(health)["status"] == "done"


class TestPlanCacheCounters:
    def test_machine_plan_cache_counts(self):
        m = SpatialMachine(16)
        key = ("sort_network", 16, False)
        assert m.plan_cache.lookup(key) is None
        m.plan_cache[key] = "plan"
        assert m.plan_cache.lookup(key) == "plan"
        assert m.plan_cache.misses == {"sort_network": 1}
        assert m.plan_cache.hits == {"sort_network": 1}
        # plain dict reads stay uncounted
        assert m.plan_cache[key] == "plan"
        assert m.plan_cache.hits == {"sort_network": 1}

    def test_sort_network_plan_counts(self):
        from repro.machine.routing import bitonic_sort

        m = SpatialMachine(64, engine="batched")
        keys = np.random.default_rng(0).integers(0, 100, size=64).astype(np.int64)
        bitonic_sort(m, keys)
        bitonic_sort(m, keys)
        assert m.plan_cache.misses.get("sort_network") == 1
        assert m.plan_cache.hits.get("sort_network", 0) >= 1

    def test_batched_messaging_counts(self):
        st = _run_treefix(n=128, engine="batched", mode="direct")
        pc = st.machine.plan_cache
        assert pc.misses.get("batched_direct") == 1
        assert pc.hits.get("batched_direct", 0) >= 1

    def test_publish_plan_cache(self):
        from repro.analysis.metrics import MetricsRegistry, publish_plan_cache

        m = SpatialMachine(16)
        m.plan_cache.lookup(("sort_network", 4, True))
        m.plan_cache[("sort_network", 4, True)] = "p"
        m.plan_cache.lookup(("sort_network", 4, True))
        reg = MetricsRegistry()
        publish_plan_cache(reg, m.plan_cache)
        text = reg.render_prometheus()
        assert "repro_plan_cache_size 1" in text
        assert 'repro_plan_cache_hits_total{plan="sort_network"} 1' in text
        assert 'repro_plan_cache_misses_total{plan="sort_network"} 1' in text


class TestCLI:
    def test_treefix_serve_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        span_log = tmp_path / "spans.jsonl"
        rc = main(
            [
                "treefix",
                "--n", "256",
                "--engine", "batched",
                "--serve-telemetry", "0",
                "--span-log", str(span_log),
                "--watchdog-sample", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[telemetry serving at http://127.0.0.1:" in out
        assert "re-verified against the scalar oracle, clean]" in out
        header, spans = load_span_jsonl(span_log)
        assert header["workload"] == "treefix"
        assert any(s["kind"] == "round" for s in spans)

    def test_span_log_alone(self, tmp_path, capsys):
        from repro.cli import main

        span_log = tmp_path / "sort.jsonl"
        rc = main(["sort", "--n", "64", "--span-log", str(span_log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[telemetry serving" not in out  # no port requested
        header, spans = load_span_jsonl(span_log)
        assert header["workload"] == "sort"
        assert any(s["name"] == "bitonic_sort" for s in spans)
