"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_lists_curves(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "zorder" in out and "moore" in out
        assert "orders:" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestLayout:
    def test_layout_all_orders(self, capsys):
        assert main(["layout", "--tree", "star", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "light_first" in out and "bfs" in out

    def test_layout_single_order_with_grid(self, capsys):
        assert main(
            ["layout", "--tree", "path", "--n", "16", "--order", "light_first", "--show-grid"]
        ) == 0
        out = capsys.readouterr().out
        assert "15" in out  # grid rendering shows the last vertex

    def test_layout_zorder_curve(self, capsys):
        assert main(["layout", "--tree", "prufer", "--n", "100", "--curve", "zorder"]) == 0


class TestAlgorithms:
    def test_treefix_verifies(self, capsys):
        assert main(["treefix", "--tree", "random", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "energy" in out

    def test_treefix_virtual_mode(self, capsys):
        assert main(["treefix", "--tree", "star", "--n", "128", "--mode", "virtual"]) == 0
        assert "mode=virtual" in capsys.readouterr().out

    def test_lca_verifies(self, capsys):
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "64"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_expr_verifies(self, capsys):
        assert main(["expr", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "root value" in out

    def test_cuts_runs(self, capsys):
        assert main(["cuts", "--tree", "prufer", "--n", "128", "--extra-edges", "200"]) == 0
        out = capsys.readouterr().out
        assert "lightest 1-respecting cut" in out

    def test_curves_table(self, capsys):
        assert main(["curves", "--side", "16"]) == 0
        out = capsys.readouterr().out
        assert "alpha_hat" in out and "peano" in out

    def test_sort_verifies(self, capsys):
        assert main(["sort", "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "engine=scalar" in out

    def test_sort_batched_descending(self, capsys):
        assert main(["sort", "--n", "200", "--engine", "batched", "--descending"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "engine=batched" in out

    def test_layout_create_runs_per_engine(self, capsys):
        bills = {}
        for engine in ("scalar", "batched"):
            assert main(["layout-create", "--tree", "prufer", "--n", "150",
                         "--engine", engine]) == 0
            out = capsys.readouterr().out
            assert "light-first layout creation" in out and "child_sort" in out
            bills[engine] = out.split("\n")[1]  # the totals line
        assert bills["scalar"] == bills["batched"]

    def test_lca_accepts_engine(self, capsys):
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "32",
                     "--engine", "batched"]) == 0
        assert "engine=batched" in capsys.readouterr().out

    def test_expr_and_cuts_accept_engine(self, capsys):
        assert main(["expr", "--n", "128", "--engine", "batched"]) == 0
        capsys.readouterr()
        assert main(["cuts", "--tree", "prufer", "--n", "128",
                     "--engine", "batched"]) == 0

    def test_unknown_engine_exits_2(self):
        for cmd in (["sort"], ["layout-create"], ["lca"], ["expr"], ["cuts"]):
            with pytest.raises(SystemExit) as exc:
                main(cmd + ["--engine", "warp"])
            assert exc.value.code == 2


class TestTelemetryOutputs:
    def test_treefix_report_and_trace(self, tmp_path, capsys):
        import json

        r = tmp_path / "run.json"
        t = tmp_path / "run.trace.json"
        assert main(
            ["treefix", "--tree", "star", "--n", "128", "--mode", "virtual",
             "--report", str(r), "--trace", str(t)]
        ) == 0
        out = capsys.readouterr().out
        assert "[report saved to" in out and "[trace saved to" in out
        rep = json.loads(r.read_text())
        assert rep["schema"] == "repro.report/v1" and rep["kind"] == "run"
        assert rep["meta"]["command"] == "treefix" and rep["meta"]["verified"]
        assert rep["totals"]["energy"] > 0 and rep["phases"]
        trace = json.loads(t.read_text())
        assert isinstance(trace, list)
        assert all({"name", "ph", "ts"} <= set(ev) for ev in trace)

    def test_report_totals_equal_printed_bill(self, tmp_path, capsys):
        import json

        r = tmp_path / "run.json"
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "32",
                     "--report", str(r)]) == 0
        out = capsys.readouterr().out
        rep = json.loads(r.read_text())
        assert f"energy {rep['totals']['energy']:,}" in out
        assert "congestion" in rep  # --report attaches the tracer

    def test_jsonl_report(self, tmp_path):
        r = tmp_path / "run.jsonl"
        assert main(["treefix", "--tree", "path", "--n", "64",
                     "--report", str(r)]) == 0
        lines = r.read_text().splitlines()
        assert len(lines) > 1  # header + steps

    def test_layout_table_report(self, tmp_path):
        import json

        r = tmp_path / "layout.json"
        assert main(["layout", "--tree", "star", "--n", "64",
                     "--report", str(r)]) == 0
        rep = json.loads(r.read_text())
        assert rep["kind"] == "layout" and rep["rows"]

    def test_curves_table_report_and_trace(self, tmp_path):
        import json

        r = tmp_path / "curves.json"
        t = tmp_path / "curves.trace.json"
        assert main(["curves", "--side", "8", "--report", str(r),
                     "--trace", str(t)]) == 0
        assert json.loads(r.read_text())["kind"] == "curves"
        assert isinstance(json.loads(t.read_text()), list)

    def test_no_step_histograms_drops_histograms(self, tmp_path):
        import json

        full = tmp_path / "full.json"
        lean = tmp_path / "lean.json"
        assert main(["treefix", "--tree", "binary", "--n", "128",
                     "--report", str(full)]) == 0
        assert main(["treefix", "--tree", "binary", "--n", "128",
                     "--report", str(lean), "--no-step-histograms"]) == 0
        full_steps = json.loads(full.read_text())["steps"]
        lean_steps = json.loads(lean.read_text())["steps"]
        assert any("distance_histogram" in s for s in full_steps)
        assert all("distance_histogram" not in s for s in lean_steps)
        # totals are unaffected by the slimmer steps
        assert (json.loads(full.read_text())["totals"]
                == json.loads(lean.read_text())["totals"])

    def test_report_subcommand_pretty_prints(self, tmp_path, capsys):
        r = tmp_path / "run.json"
        main(["treefix", "--tree", "binary", "--n", "128", "--report", str(r)])
        capsys.readouterr()
        assert main(["report", str(r)]) == 0
        out = capsys.readouterr().out
        assert "totals:" in out and "treefix" in out

    def test_report_subcommand_diff(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["treefix", "--tree", "binary", "--n", "64", "--report", str(a)])
        main(["treefix", "--tree", "binary", "--n", "256", "--report", str(b)])
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "Δenergy" in out
        assert "treefix_bottom_up_contract" in out

    def test_report_diff_requires_two_paths(self, tmp_path):
        r = tmp_path / "a.json"
        main(["treefix", "--tree", "path", "--n", "32", "--report", str(r)])
        with pytest.raises(SystemExit):
            main(["report", "--diff", str(r)])

    def test_report_requires_a_path(self):
        with pytest.raises(SystemExit):
            main(["report"])


class TestProfile:
    def test_profile_treefix_writes_bundle(self, tmp_path, capsys):
        import json

        out = tmp_path / "prof"
        assert main(["profile", "treefix", "--tree", "binary", "--n", "256",
                     "--out", str(out), "--window", "16"]) == 0
        text = capsys.readouterr().out
        assert "cells by energy sent" in text and "link timeline" in text

        heat = json.loads((out / "heatmap.json").read_text())
        assert heat["schema"] == "repro.profile/v1"
        assert heat["meta"]["workload"] == "treefix"
        assert heat["totals"]["energy"] > 0
        side = heat["side"]
        assert len(heat["cells"]["energy_sent"]) == side

        prom = (out / "metrics.prom").read_text()
        assert "# TYPE repro_energy_total counter" in prom
        assert f"repro_energy_total {heat['totals']['energy']}" in prom

        folded = (out / "flame_energy.folded").read_text().splitlines()
        assert folded and all(line.rsplit(" ", 1)[1].isdigit() for line in folded)
        assert json.loads((out / "report.json").read_text())["kind"] == "run"
        assert json.loads((out / "hotspots.json").read_text())

    def test_profile_lca_runs(self, tmp_path):
        out = tmp_path / "prof"
        assert main(["profile", "lca", "--tree", "prufer", "--n", "128",
                     "--queries", "16", "--out", str(out)]) == 0
        assert (out / "heatmap.json").exists()

    def test_profile_no_step_histograms(self, tmp_path):
        import json

        out = tmp_path / "prof"
        assert main(["profile", "expr", "--n", "128", "--out", str(out),
                     "--no-step-histograms"]) == 0
        steps = json.loads((out / "report.json").read_text())["steps"]
        assert steps and all("distance_histogram" not in s for s in steps)

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "fourier", "--out", "x"])


class TestSanitize:
    def test_sanitize_treefix_clean(self, capsys):
        assert main(["sanitize", "treefix", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "policy=crew" in out

    def test_sanitize_writes_findings_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "findings.json"
        assert main(["sanitize", "lca", "--n", "128",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.sanitize/v1"
        assert report["clean"] is True
        assert set(report["sanitizers"]) == {
            "write-race", "determinism", "ghost-state"
        }
        assert report["meta"]["workload"] == "lca"

    def test_sanitize_with_fuzzing(self, capsys):
        assert main(["sanitize", "cuts", "--n", "128", "--fuzz"]) == 0
        assert "fuzz=on" in capsys.readouterr().out

    def test_sanitize_erew_policy_flags_builtin_workload(self, capsys):
        # the builtin workloads are CREW-clean but a star is not EREW-clean:
        # the hub legitimately feeds many children in a single bulk step
        assert main(["sanitize", "treefix", "--tree", "star", "--n", "256",
                     "--policy", "erew"]) == 1
        assert "SAN-RACE-READ" in capsys.readouterr().out


class TestLint:
    def test_lint_src_is_clean(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO001" in out and "REPRO009" in out

    def test_lint_flags_fixture_and_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "spatial"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text("print('lib code')\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "REPRO007" in capsys.readouterr().out


class TestErrors:
    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_tree_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["treefix", "--tree", "nope"])

    def test_validation_error_is_clean_exit_2(self, capsys):
        assert main(["treefix", "--n", "-5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_machine_state_error_is_clean_exit_2(self, capsys):
        assert main(["lint", "/nonexistent/nope.py"]) == 2
        assert "repro: error:" in capsys.readouterr().err
