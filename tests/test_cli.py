"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_lists_curves(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "zorder" in out and "moore" in out
        assert "orders:" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestLayout:
    def test_layout_all_orders(self, capsys):
        assert main(["layout", "--tree", "star", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "light_first" in out and "bfs" in out

    def test_layout_single_order_with_grid(self, capsys):
        assert main(
            ["layout", "--tree", "path", "--n", "16", "--order", "light_first", "--show-grid"]
        ) == 0
        out = capsys.readouterr().out
        assert "15" in out  # grid rendering shows the last vertex

    def test_layout_zorder_curve(self, capsys):
        assert main(["layout", "--tree", "prufer", "--n", "100", "--curve", "zorder"]) == 0


class TestAlgorithms:
    def test_treefix_verifies(self, capsys):
        assert main(["treefix", "--tree", "random", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "energy" in out

    def test_treefix_virtual_mode(self, capsys):
        assert main(["treefix", "--tree", "star", "--n", "128", "--mode", "virtual"]) == 0
        assert "mode=virtual" in capsys.readouterr().out

    def test_lca_verifies(self, capsys):
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "64"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_expr_verifies(self, capsys):
        assert main(["expr", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "root value" in out

    def test_cuts_runs(self, capsys):
        assert main(["cuts", "--tree", "prufer", "--n", "128", "--extra-edges", "200"]) == 0
        out = capsys.readouterr().out
        assert "lightest 1-respecting cut" in out

    def test_curves_table(self, capsys):
        assert main(["curves", "--side", "16"]) == 0
        out = capsys.readouterr().out
        assert "alpha_hat" in out and "peano" in out


class TestErrors:
    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_tree_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["treefix", "--tree", "nope"])
