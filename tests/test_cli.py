"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_lists_curves(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "zorder" in out and "moore" in out
        assert "orders:" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestLayout:
    def test_layout_all_orders(self, capsys):
        assert main(["layout", "--tree", "star", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "light_first" in out and "bfs" in out

    def test_layout_single_order_with_grid(self, capsys):
        assert main(
            ["layout", "--tree", "path", "--n", "16", "--order", "light_first", "--show-grid"]
        ) == 0
        out = capsys.readouterr().out
        assert "15" in out  # grid rendering shows the last vertex

    def test_layout_zorder_curve(self, capsys):
        assert main(["layout", "--tree", "prufer", "--n", "100", "--curve", "zorder"]) == 0


class TestAlgorithms:
    def test_treefix_verifies(self, capsys):
        assert main(["treefix", "--tree", "random", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "energy" in out

    def test_treefix_virtual_mode(self, capsys):
        assert main(["treefix", "--tree", "star", "--n", "128", "--mode", "virtual"]) == 0
        assert "mode=virtual" in capsys.readouterr().out

    def test_lca_verifies(self, capsys):
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "64"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_expr_verifies(self, capsys):
        assert main(["expr", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "root value" in out

    def test_cuts_runs(self, capsys):
        assert main(["cuts", "--tree", "prufer", "--n", "128", "--extra-edges", "200"]) == 0
        out = capsys.readouterr().out
        assert "lightest 1-respecting cut" in out

    def test_curves_table(self, capsys):
        assert main(["curves", "--side", "16"]) == 0
        out = capsys.readouterr().out
        assert "alpha_hat" in out and "peano" in out


class TestTelemetryOutputs:
    def test_treefix_report_and_trace(self, tmp_path, capsys):
        import json

        r = tmp_path / "run.json"
        t = tmp_path / "run.trace.json"
        assert main(
            ["treefix", "--tree", "star", "--n", "128", "--mode", "virtual",
             "--report", str(r), "--trace", str(t)]
        ) == 0
        out = capsys.readouterr().out
        assert "[report saved to" in out and "[trace saved to" in out
        rep = json.loads(r.read_text())
        assert rep["schema"] == "repro.report/v1" and rep["kind"] == "run"
        assert rep["meta"]["command"] == "treefix" and rep["meta"]["verified"]
        assert rep["totals"]["energy"] > 0 and rep["phases"]
        trace = json.loads(t.read_text())
        assert isinstance(trace, list)
        assert all({"name", "ph", "ts"} <= set(ev) for ev in trace)

    def test_report_totals_equal_printed_bill(self, tmp_path, capsys):
        import json

        r = tmp_path / "run.json"
        assert main(["lca", "--tree", "prufer", "--n", "128", "--queries", "32",
                     "--report", str(r)]) == 0
        out = capsys.readouterr().out
        rep = json.loads(r.read_text())
        assert f"energy {rep['totals']['energy']:,}" in out
        assert "congestion" in rep  # --report attaches the tracer

    def test_jsonl_report(self, tmp_path):
        r = tmp_path / "run.jsonl"
        assert main(["treefix", "--tree", "path", "--n", "64",
                     "--report", str(r)]) == 0
        lines = r.read_text().splitlines()
        assert len(lines) > 1  # header + steps

    def test_layout_table_report(self, tmp_path):
        import json

        r = tmp_path / "layout.json"
        assert main(["layout", "--tree", "star", "--n", "64",
                     "--report", str(r)]) == 0
        rep = json.loads(r.read_text())
        assert rep["kind"] == "layout" and rep["rows"]

    def test_curves_table_report_and_trace(self, tmp_path):
        import json

        r = tmp_path / "curves.json"
        t = tmp_path / "curves.trace.json"
        assert main(["curves", "--side", "8", "--report", str(r),
                     "--trace", str(t)]) == 0
        assert json.loads(r.read_text())["kind"] == "curves"
        assert isinstance(json.loads(t.read_text()), list)

    def test_report_subcommand_pretty_prints(self, tmp_path, capsys):
        r = tmp_path / "run.json"
        main(["treefix", "--tree", "binary", "--n", "128", "--report", str(r)])
        capsys.readouterr()
        assert main(["report", str(r)]) == 0
        out = capsys.readouterr().out
        assert "totals:" in out and "treefix" in out

    def test_report_subcommand_diff(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["treefix", "--tree", "binary", "--n", "64", "--report", str(a)])
        main(["treefix", "--tree", "binary", "--n", "256", "--report", str(b)])
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "Δenergy" in out
        assert "treefix_bottom_up_contract" in out

    def test_report_diff_requires_two_paths(self, tmp_path):
        r = tmp_path / "a.json"
        main(["treefix", "--tree", "path", "--n", "32", "--report", str(r)])
        with pytest.raises(SystemExit):
            main(["report", "--diff", str(r)])

    def test_report_requires_a_path(self):
        with pytest.raises(SystemExit):
            main(["report"])


class TestErrors:
    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_tree_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["treefix", "--tree", "nope"])
