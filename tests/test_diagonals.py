"""Tests for the Z-order diagonal machinery (paper §III-C, Fig. 2).

The paper gives one concrete number — ``E_d(6, 10) = 4`` — plus structural
claims: Lemma 3's decomposition bound, Lemma 6's usage count for a fixed
diagonal, and Lemma 7's O(n) total diagonal energy for light-first layouts.
All are checked here (the energy scaling itself is benchmark E2).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.diagonals import (
    alignment_level,
    diagonal_manhattan,
    diagonal_usage_counts,
    e_b,
    e_d,
    longest_diagonal_boundary,
    verify_decomposition,
)
from repro.errors import ValidationError


class TestAlignmentLevel:
    def test_basic_levels(self):
        assert alignment_level(np.array([1, 2, 3])).tolist() == [0, 0, 0]
        assert alignment_level(np.array([4, 8, 12])).tolist() == [1, 1, 1]
        assert alignment_level(np.array([16, 32, 64])).tolist() == [2, 2, 3]

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            alignment_level(np.array([0]))


class TestLongestDiagonalBoundary:
    def test_paper_example(self):
        # Fig. 2: between 6 and 10 the longest diagonal is at the 8 boundary
        assert longest_diagonal_boundary(6, 10)[0] == 8

    def test_no_crossing(self):
        assert longest_diagonal_boundary(5, 5)[0] == 0

    def test_within_block(self):
        # (4, 6]: boundaries 5 and 6; the most aligned is 6? both level 0 →
        # the largest multiple of 4^0 <= 6 is picked
        m = longest_diagonal_boundary(4, 6)[0]
        assert 4 < m <= 6

    def test_rejects_reversed(self):
        with pytest.raises(ValidationError):
            longest_diagonal_boundary(5, 3)

    @given(
        i=st.integers(min_value=0, max_value=4000),
        gap=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_most_aligned_in_range(self, i, gap):
        j = i + gap
        m = int(longest_diagonal_boundary(i, j)[0])
        assert i < m <= j
        lvl = int(alignment_level(m)[0]) if m >= 1 else -1
        # no more-aligned boundary can exist inside (i, j]
        step = 4 ** (lvl + 1)
        assert (j // step) * step <= i


class TestDiagonalEnergy:
    def test_paper_fig2_value(self):
        assert e_d(6, 10, 4)[0] == 4

    def test_zero_when_no_boundary(self):
        assert e_d(3, 3, 4)[0] == 0

    def test_diagonal_manhattan_matches_curve_jump(self):
        from repro.curves import get_curve

        z = get_curve("zorder")
        for m in (1, 2, 4, 8, 12, 16, 32):
            d = diagonal_manhattan(np.array([m]), 8)[0]
            assert d == z.pairwise_distance(m - 1, m, 8)[0]

    @given(
        i=st.integers(min_value=0, max_value=1000),
        gap=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_lemma3_decomposition(self, i, gap):
        """dist(i, j) <= E_b(i, j) + E_d(i, j) (Lemma 3)."""
        side = 64  # 4096 cells
        j = i + gap
        slack = verify_decomposition(np.array([i]), np.array([j]), side)
        assert slack[0] >= 0

    def test_e_b_bound_formula(self):
        assert e_b(0, 16)[0] == 8 * 4
        assert e_b(np.array([3]), np.array([3]))[0] == 0


class TestUsageCounts:
    def test_light_first_tree_obeys_lemma6(self):
        """Count how often each boundary is the longest diagonal over the
        parent→child sends of a light-first layout; Lemma 6 bounds it by
        Δ·ceil(log2(4 k²)) where k is the diagonal length."""
        from repro.layout import TreeLayout
        from repro.trees import random_binary_tree

        tree = random_binary_tree(512, seed=3)
        layout = TreeLayout.build(tree, order="light_first", curve="zorder")
        edges = tree.edges()
        pi = layout.position[edges[:, 0]]
        pj = layout.position[edges[:, 1]]
        lo = np.minimum(pi, pj)
        hi = np.maximum(pi, pj)
        counts = diagonal_usage_counts(lo, hi)
        delta = tree.max_degree
        for m, cnt in counts.items():
            length = int(diagonal_manhattan(np.array([m]), layout.side)[0])
            bound = delta * int(np.ceil(np.log2(max(2, 4 * length * length))))
            assert cnt <= bound, (m, cnt, bound)

    def test_counts_sum_to_crossing_pairs(self):
        i = np.array([0, 1, 5, 7])
        j = np.array([0, 3, 9, 7])
        counts = diagonal_usage_counts(i, j)
        assert sum(counts.values()) == 2  # two pairs actually cross a boundary
