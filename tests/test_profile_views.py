"""Tests for profile renderers: heatmap JSON, folded stacks, bundles."""

import json

import numpy as np
import pytest

from repro.analysis.profile_views import (
    PROFILE_SCHEMA,
    folded_stacks,
    hotspot_table,
    profile_heatmaps,
    save_folded,
    write_profile_bundle,
)
from repro.analysis.report import RunRecorder
from repro.errors import ValidationError
from repro.machine import SpatialMachine, SpatialProfiler, attach_tracer


def profiled_run(n=64, window=8, seed=0, **kwargs):
    m = SpatialMachine(n)
    attach_tracer(m)
    prof = m.attach(SpatialProfiler(window=window, **kwargs))
    rec = m.attach(RunRecorder())
    rng = np.random.default_rng(seed)
    with m.phase("outer"):
        m.send(rng.integers(0, n, 16), rng.integers(0, n, 16))
        with m.phase("inner"):
            m.send(rng.integers(0, n, 16), rng.integers(0, n, 16))
    m.send(rng.integers(0, n, 8), rng.integers(0, n, 8))  # unphased
    return m, prof, rec


class TestHeatmapJson:
    def test_document_shape(self):
        m, prof, _ = profiled_run()
        doc = profile_heatmaps(prof, meta={"workload": "test"})
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["side"] == m.side
        assert doc["meta"]["workload"] == "test"
        for grid in doc["cells"].values():
            assert len(grid) == m.side and len(grid[0]) == m.side
        assert doc["totals"]["energy"] == m.energy
        assert sum(sum(row) for row in doc["cells"]["energy_sent"]) == m.energy

    def test_link_windows_serialized(self):
        _, prof, _ = profiled_run()
        doc = profile_heatmaps(prof)
        windows = doc["links"]["windows"]
        assert windows
        for w in windows:
            assert {"window", "depth_start", "depth_end", "energy",
                    "max_link_load", "retained"} <= set(w)
            if w["retained"]:
                assert "h" in w and "v" in w

    def test_evicted_windows_have_no_matrices(self):
        _, prof, _ = profiled_run(window=2, max_windows=1)
        doc = profile_heatmaps(prof)
        windows = doc["links"]["windows"]
        assert any(not w["retained"] for w in windows)
        for w in windows:
            assert w["retained"] == ("h" in w)

    def test_json_serializable(self):
        _, prof, _ = profiled_run()
        json.dumps(profile_heatmaps(prof))  # must not raise


class TestFoldedStacks:
    def test_energy_weights_sum_to_total(self):
        m, _, rec = profiled_run()
        text = folded_stacks(rec.steps, weight="energy")
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert total == m.energy

    def test_stack_paths_follow_phase_nesting(self):
        _, _, rec = profiled_run()
        lines = folded_stacks(rec.steps).splitlines()
        stacks = {line.rsplit(" ", 1)[0] for line in lines}
        assert "outer" in stacks
        assert "outer;inner" in stacks
        assert "(unphased)" in stacks

    def test_depth_weight(self):
        m, _, rec = profiled_run()
        text = folded_stacks(rec.steps, weight="depth")
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert 0 < total <= m.depth

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValidationError):
            folded_stacks([], weight="joules")

    def test_save_folded_empty_run(self, tmp_path):
        path = save_folded([], tmp_path / "empty.folded")
        assert path.read_text() == ""


class TestBundle:
    def test_bundle_writes_all_artifacts(self, tmp_path):
        m, prof, rec = profiled_run()
        paths = write_profile_bundle(
            tmp_path / "prof", profiler=prof, recorder=rec, machine=m,
            meta={"workload": "synthetic"},
        )
        expected = {"heatmap", "metrics_prom", "metrics_json", "hotspots",
                    "flame_energy", "flame_depth", "report"}
        assert expected <= set(paths)
        for path in paths.values():
            assert path.exists()
        prom = paths["metrics_prom"].read_text()
        assert f"repro_energy_total {m.energy}" in prom
        report = json.loads(paths["report"].read_text())
        assert report["kind"] == "run" and report["meta"]["workload"] == "synthetic"

    def test_bundle_without_recorder(self, tmp_path):
        m, prof, _ = profiled_run()
        paths = write_profile_bundle(tmp_path / "p", profiler=prof, machine=m)
        assert "flame_energy" not in paths and "report" not in paths
        assert paths["heatmap"].exists()

    def test_hotspot_table_renders(self):
        _, prof, _ = profiled_run()
        text = hotspot_table(prof, metric="energy_sent", k=3)
        assert "energy_sent" in text and "share" in text

    def test_hotspot_table_empty(self):
        prof = SpatialMachine(16).attach(SpatialProfiler())
        assert "no traffic" in hotspot_table(prof)
