#!/usr/bin/env python
"""One-shot reproduction checklist.

Runs a fast version of every headline claim in EXPERIMENTS.md and prints a
PASS/FAIL table against the paper's statements. The full benchmark suite
(`pytest benchmarks/ --benchmark-only`) is the authoritative run; this
script is the five-minute "does the reproduction hold on my machine"
smoke check.

Run:  python examples/reproduce_all.py
"""

import numpy as np

from repro import SpatialTree
from repro.analysis import fit_exponent, format_table
from repro.curves import empirical_alpha
from repro.curves.diagonals import e_d
from repro.layout import LayoutMetrics, TreeLayout
from repro.machine import SpatialMachine, exclusive_scan
from repro.spatial import (
    SpatialTree as _ST,
    create_light_first_layout,
    lca_batch,
    list_rank,
    local_broadcast,
    pram_treefix,
    treefix_sum,
)
from repro.trees import (
    BinaryLiftingLCA,
    bottom_up_treefix,
    perfect_kary_tree,
    prufer_random_tree,
    star_tree,
)

CHECKS = []


def check(claim, paper, measured, ok):
    CHECKS.append({"claim": claim, "paper": paper, "measured": measured,
                   "status": "PASS" if ok else "FAIL"})


def main() -> None:
    rng = np.random.default_rng(0)

    # --- Thm 1: light-first layouts have O(n) messaging energy -----------
    ns, es = [], []
    for h in (9, 11, 13):
        t = perfect_kary_tree(h)
        ns.append(t.n)
        es.append(LayoutMetrics.of(TreeLayout.build(t, order="light_first")).total_energy)
    exp = fit_exponent(ns, es)
    check("Thm 1: light-first energy", "O(n)", f"exponent {exp:.2f}", 0.9 <= exp <= 1.1)

    # --- §III: BFS is Ω(√n)-bad on perfect binary trees -------------------
    t = perfect_kary_tree(12)
    bad = LayoutMetrics.of(TreeLayout.build(t, order="bfs")).mean_distance
    check("§III: BFS layout distance", "Ω(√n)", f"{bad:.1f} (√n={np.sqrt(t.n):.0f})",
          bad > np.sqrt(t.n) / 4)

    # --- Fig. 2: E_d(6,10) = 4 --------------------------------------------
    ed = int(e_d(6, 10, 4)[0])
    check("Fig. 2: E_d(6,10)", "4", str(ed), ed == 4)

    # --- §III-B: curve constants ------------------------------------------
    a = empirical_alpha("hilbert", 64, seed=1).alpha_hat
    check("§III-B: Hilbert α", "≤ 3", f"{a:.2f}", a <= 3)

    # --- §II-A: scan O(n) energy ------------------------------------------
    per = []
    for n in (1024, 16384):
        m = SpatialMachine(n)
        exclusive_scan(m, np.ones(n, dtype=np.int64))
        per.append(m.energy / n)
    check("§II-A: scan energy/n flat", "O(n)", f"{per[0]:.2f} → {per[1]:.2f}",
          per[1] <= per[0] * 1.2)

    # --- Thm 3: star broadcast depth O(log n) ------------------------------
    n = 4096
    st = SpatialTree.build(star_tree(n), mode="virtual")
    st.virtual_schedule
    before = st.machine.depth
    local_broadcast(st, np.zeros(n, dtype=np.int64))
    d = st.machine.depth - before
    check("Thm 3: star broadcast depth", "O(log n)", f"{d} (log²n={np.log2(n)**2:.0f})",
          d <= 3 * np.log2(n))

    # --- Thm 5: list ranking Θ(n^{3/2}) energy, O(log n) rounds -----------
    perm = rng.permutation(4096)
    succ = np.full(4096, -1, dtype=np.int64)
    succ[perm[:-1]] = perm[1:]
    m = SpatialMachine(4096)
    res = list_rank(m, succ, seed=2)
    check("Thm 5: list-ranking rounds", "O(log n)", str(res.rounds),
          res.rounds <= 4 * np.log2(4096))

    # --- Thm 4: layout creation matches sequential order -------------------
    t = prufer_random_tree(512, seed=3)
    creation = create_light_first_layout(t, seed=4)
    from repro.layout import light_first_order

    ok = np.array_equal(creation.layout.order, light_first_order(t))
    check("Thm 4: §IV pipeline output", "light-first order", "bit-identical" if ok else "mismatch", ok)

    # --- Lemmas 11/12: treefix correct + near-linear -----------------------
    t = prufer_random_tree(4096, seed=5)
    vals = rng.integers(0, 100, size=4096)
    st = SpatialTree.build(t)
    out = treefix_sum(st, vals, seed=6)
    ok = np.array_equal(out, bottom_up_treefix(t, vals))
    e_norm = st.machine.energy / (4096 * np.log2(4096))
    check("§V: treefix correctness", "= sequential", "exact" if ok else "mismatch", ok)
    check("§V: treefix energy", "O(n log n)", f"{e_norm:.2f}·n·log n", e_norm < 20)

    # --- Thm 6: batched LCA correct ----------------------------------------
    us, vs = rng.permutation(4096), rng.permutation(4096)
    st2 = SpatialTree.build(t)
    ans = lca_batch(st2, us, vs, seed=7)
    ok = np.array_equal(ans, BinaryLiftingLCA(t).query_batch(us, vs))
    check("§VI: batched LCA", "= sequential oracle", "exact" if ok else "mismatch", ok)

    # --- §I-C: vs PRAM ------------------------------------------------------
    pram = pram_treefix(t, vals)
    ratio = pram.energy / st.machine.energy
    check("§I-C: PRAM energy ratio", "≫ 1, grows like √n/log n", f"{ratio:.0f}×", ratio > 10)

    print(format_table(CHECKS))
    failed = [c for c in CHECKS if c["status"] == "FAIL"]
    print(f"\n{len(CHECKS) - len(failed)}/{len(CHECKS)} checks passed")
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
