#!/usr/bin/env python
"""Regenerate the objects of the paper's figures as ASCII (Figs. 1–8).

Each section builds the exact structure a figure draws and renders it,
asserting the concrete values the paper states (e.g. Fig. 2's
``E_d(6, 10) = 4``).

Run:  python examples/figures.py
"""

import numpy as np

from repro.analysis import render_curve, render_layout_grid
from repro.curves import get_curve
from repro.curves.diagonals import e_d, longest_diagonal_boundary
from repro.layout import TreeLayout, light_first_order
from repro.machine import SpatialMachine
from repro.spatial import SpatialTree
from repro.spatial.subtree_cover import build_cover, compute_ranges
from repro.trees import Tree, heavy_light_decomposition, star_tree, transform_tree


def fig1_hilbert_light_first():
    print("=" * 72)
    print("Fig. 1 — a tree stored in Hilbert-light-first order")
    print("=" * 72)
    # an unbalanced tree: smaller subtree stored first, larger after
    parents = np.array([-1, 0, 0, 2, 2, 2, 5, 5, 3, 3, 4, 4, 6, 6, 7, 7])
    tree = Tree(parents)
    layout = TreeLayout.build(tree, order="light_first", curve="hilbert")
    print("grid cells show which vertex sits at each processor:")
    print(render_layout_grid(layout))
    order = light_first_order(tree)
    print(f"\nlight-first order: {list(order)}")
    sizes = tree.subtree_sizes()
    c1, c2 = tree.children(0)
    print(f"children of the root have subtree sizes {sizes[c1]} and {sizes[c2]}: "
          "the smaller subtree is stored first, then the larger (paper §III-A)")


def fig2_zorder_diagonals():
    print("\n" + "=" * 72)
    print("Fig. 2 — 16 elements stored in Z-order; the diagonal between 6 and 10")
    print("=" * 72)
    print(render_curve(get_curve("zorder"), 4))
    m = int(longest_diagonal_boundary(6, 10)[0])
    ed = int(e_d(6, 10, 4)[0])
    print(f"\nlongest diagonal between i=6 and j=10: the jump {m - 1}→{m}; "
          f"E_d(6,10) = {ed}")
    assert ed == 4, "paper states E_d(6,10) = 4"


def fig3_transform():
    print("\n" + "=" * 72)
    print("Fig. 3 — TRANSFORM of a degree-8 vertex (current vs appended children)")
    print("=" * 72)
    tree = star_tree(9)
    vt = transform_tree(tree)
    for v in range(9):
        cur = [int(c) for c in vt.cur[v] if c >= 0]
        app = [int(a) for a in vt.app[v] if a >= 0]
        if cur or app:
            print(f"vertex {v}: current {cur or '—'}, appended {app or '—'}")
    assert vt.virtual_degree().max() <= 4


def fig4_reference_passing():
    print("\n" + "=" * 72)
    print("Fig. 4 — reference passing builds T̂ with O(1) memory per vertex")
    print("=" * 72)
    tree = star_tree(9)
    st = SpatialTree.build(tree, mode="virtual")
    st.virtual_schedule
    cost = st.machine.ledger.summary()["virtual_tree_construction"]
    print(f"construction messages: {cost['messages']}, energy {cost['energy']}, "
          f"depth {cost['depth']} (bottom-up over the relay levels)")


def figs5_6_7_contraction():
    print("\n" + "=" * 72)
    print("Figs. 5–7 — COMPRESS / contraction tree / RAKE, traced on a small tree")
    print("=" * 72)
    parents = np.array([-1, 0, 1, 2, 2, 0, 5, 5])
    tree = Tree(parents)
    st = SpatialTree.build(tree)
    vals = np.arange(8)
    out = st.treefix_sum(vals, seed=1)
    phases = st.machine.ledger.summary()
    print(f"tree: {list(parents)}  values: {list(vals)}")
    print(f"treefix result (subtree sums): {list(out)}")
    print(f"contraction:   energy {phases['treefix_bottom_up_contract']['energy']}, "
          f"depth {phases['treefix_bottom_up_contract']['depth']}")
    print(f"uncontraction: energy {phases['treefix_bottom_up_expand']['energy']}, "
          f"depth {phases['treefix_bottom_up_expand']['depth']}")


def fig8_subtree_cover():
    print("\n" + "=" * 72)
    print("Fig. 8 — path decomposition layers and subtree cover ranges")
    print("=" * 72)
    parents = np.array([-1, 0, 1, 1, 0, 4, 4, 6])
    tree = Tree(parents)
    hl = heavy_light_decomposition(tree)
    st = SpatialTree.build(tree)
    cover = build_cover(st, compute_ranges(st, seed=0), seed=0)
    pos = st.layout.position
    print("vertex (light-first pos): layer | cover subtree range")
    for v in np.argsort(pos):
        lo = cover.ranges.lo[v]
        hi = cover.ranges.hi[v]
        head = "head" if cover.is_head[v] else "    "
        print(f"  pos {pos[v]}: layer {cover.layer[v]} {head} range [{lo},{hi}]")
    # paper's concrete example values
    layer_by_pos = {int(pos[v]): int(cover.layer[v]) for v in range(8)}
    assert [layer_by_pos[p] for p in (0, 4, 6, 7)] == [0, 0, 0, 0]  # yellow
    assert [layer_by_pos[p] for p in (1, 3, 5)] == [1, 1, 1]        # green
    assert layer_by_pos[2] == 2                                     # red
    s1 = next(v for v in range(8) if pos[v] == 1)
    assert (cover.ranges.lo[s1], cover.ranges.hi[s1]) == (1, 3)     # S1 = [1,3]
    print("\nmatches the paper: yellow path (0,4,6,7), green (1,3) and (5), "
          "red (2); subtree S1 = range [1,3]")


def main() -> None:
    fig1_hilbert_light_first()
    fig2_zorder_diagonals()
    fig3_transform()
    fig4_reference_passing()
    figs5_6_7_contraction()
    fig8_subtree_cover()
    print("\nall figure-level assertions passed")


if __name__ == "__main__":
    main()
