#!/usr/bin/env python
"""Quickstart: lay a tree out on the spatial computer and run the paper's
two algorithms, reading the energy/depth bill afterwards.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SpatialTree
from repro.analysis import format_table
from repro.trees import BinaryLiftingLCA, bottom_up_treefix, prufer_random_tree


def main() -> None:
    n = 4096
    rng = np.random.default_rng(0)

    # 1. a uniformly random tree with n vertices (unbounded degree)
    tree = prufer_random_tree(n, seed=42)
    print(f"tree: n={tree.n}, max degree Δ={tree.max_degree}, height={tree.height()}")

    # 2. store it in light-first order along a Hilbert curve, one vertex
    #    per processor of a √n×√n-ish grid (paper §III)
    st = SpatialTree.build(tree, order="light_first", curve="hilbert")
    print(f"grid: {st.layout.side}×{st.layout.side} ({st.layout.curve.name} curve), "
          f"messaging mode: {st.mode}")

    # 3. treefix sum (§V): every vertex gets the sum over its subtree
    values = rng.integers(0, 100, size=n)
    sums = st.treefix_sum(values, seed=1)
    assert np.array_equal(sums, bottom_up_treefix(tree, values))
    after_treefix = st.snapshot()

    # 4. batched LCA (§VI): one query per vertex
    us, vs = rng.permutation(n), rng.permutation(n)
    answers = st.lca_batch(us, vs, seed=2)
    assert np.array_equal(answers, BinaryLiftingLCA(tree).query_batch(us, vs))
    after_lca = st.snapshot()

    # 5. the bill, in the spatial computer model's own units
    rows = [
        {
            "operation": "treefix sum",
            "energy": after_treefix["energy"],
            "energy/(n·log2 n)": round(after_treefix["energy"] / (n * np.log2(n)), 3),
            "depth": after_treefix["depth"],
        },
        {
            "operation": "  + batched LCA",
            "energy": after_lca["energy"],
            "energy/(n·log2 n)": round(after_lca["energy"] / (n * np.log2(n)), 3),
            "depth": after_lca["depth"],
        },
    ]
    print()
    print(format_table(rows))
    print("\nBoth results were verified against sequential reference "
          "implementations. Energy is the total Manhattan distance of all "
          "messages; depth is the longest dependent message chain (§II-A).")


if __name__ == "__main__":
    main()
