#!/usr/bin/env python
"""Phylogenetics workload (paper §I: "the study of phylogenetic trees ...
by extensively analyzing tree structures").

A Yule birth–death phylogeny with 5,000 extant taxa is laid out once in
light-first order, then three standard phylogenetic analyses run as tree
kernels, amortizing the layout cost exactly as §I-D suggests:

  * clade sizes           — bottom-up treefix with +
  * maximum branch depth  — top-down treefix with + (root-to-leaf depths)
  * most recent common ancestors of taxon pairs — batched LCA

The script also round-trips the tree through Newick to show interop with
standard phylogenetics formats.

Run:  python examples/phylogenetics.py
"""

import numpy as np

from repro import SpatialTree
from repro.analysis import format_table
from repro.spatial import create_light_first_layout
from repro.trees import (
    BinaryLiftingLCA,
    birth_death_phylogeny,
    parse_newick,
    to_newick,
)


def main() -> None:
    num_taxa = 5000
    tree = birth_death_phylogeny(num_taxa, seed=7)
    n = tree.n
    print(f"Yule phylogeny: {num_taxa} taxa, {n} vertices, height {tree.height()}")

    # Newick interop: serialize and re-parse (ids as labels)
    newick = to_newick(tree)
    reparsed, _ = parse_newick(newick)
    assert reparsed.n == n
    print(f"Newick round-trip ok ({len(newick):,} characters)")

    # --- one-time layout creation, measured on the machine (§IV) ---------
    creation = create_light_first_layout(tree, seed=1)
    print(f"layout creation: energy {creation.energy:,} "
          f"(= {creation.energy / n**1.5:.1f}·n^1.5), depth {creation.depth}")

    st = SpatialTree(creation.layout)

    # --- analysis 1: clade (subtree) sizes --------------------------------
    clade_sizes = st.treefix_sum(np.ones(n, dtype=np.int64), seed=2)
    biggest_inner = int(np.sort(clade_sizes)[-2])
    cost1 = st.snapshot()

    # --- analysis 2: node depths (generation counts) ----------------------
    depths = st.top_down_treefix(np.ones(n, dtype=np.int64), seed=3) - 1
    assert np.array_equal(depths, tree.depths())
    cost2 = st.snapshot()

    # --- analysis 3: MRCA queries over random taxon pairs ------------------
    # keep each vertex in O(1) queries (paper §VI's assumption) by pairing
    # two permutations of the vertex set
    rng = np.random.default_rng(4)
    us = rng.permutation(n)
    vs = rng.permutation(n)
    mrca = st.lca_batch(us, vs, seed=5)
    assert np.array_equal(mrca[:64], BinaryLiftingLCA(tree).query_batch(us[:64], vs[:64]))
    cost3 = st.snapshot()

    rows = [
        {"analysis": "clade sizes (treefix +)", "cum_energy": cost1["energy"], "cum_depth": cost1["depth"]},
        {"analysis": "node depths (top-down treefix)", "cum_energy": cost2["energy"], "cum_depth": cost2["depth"]},
        {"analysis": "MRCA batch (LCA)", "cum_energy": cost3["energy"], "cum_depth": cost3["depth"]},
    ]
    print()
    print(format_table(rows))
    print(f"\nlargest non-root clade: {biggest_inner} vertices; "
          f"deepest node: generation {int(depths.max())}")
    amortized = creation.energy / cost3["energy"]
    print(f"layout creation cost ≈ {amortized:.1f}× one full analysis pass — "
          "amortized away after a few passes over the same tree (§I-D)")


if __name__ == "__main__":
    main()
