#!/usr/bin/env python
"""Machine-learning workload (paper §I: "models like decision trees and
random forests can realize enhanced performance through spatial locality").

A random forest of CART-shaped trees is analyzed on the spatial computer:
for every tree we compute, with treefix kernels,

  * sample counts per node  — bottom-up treefix over leaf sample counts
    (the statistic behind impurity-based feature importance), and
  * path depths             — top-down treefix (expected inference cost).

The experiment compares the same forest in light-first vs BFS layouts: the
per-message distance gap is exactly what §III predicts a spatial
accelerator would feel when traversing trees laid out naively.

Run:  python examples/decision_forest.py
"""

import numpy as np

from repro import SpatialTree
from repro.analysis import format_table
from repro.layout import LayoutMetrics, TreeLayout
from repro.trees import bottom_up_treefix, decision_tree_shape


def analyze_tree(tree, rng, order):
    st = SpatialTree.build(tree, order=order, seed=0)
    n = tree.n
    # leaves carry the training-sample counts that reached them
    is_leaf = tree.is_leaf()
    samples = np.where(is_leaf, rng.integers(1, 64, size=n), 0)
    node_counts = st.treefix_sum(samples, seed=1)
    assert np.array_equal(node_counts, bottom_up_treefix(tree, samples))
    depths = st.top_down_treefix(np.ones(n, dtype=np.int64), seed=2) - 1
    # expected inference depth = Σ leaf_depth · leaf_samples / Σ samples
    total = node_counts[tree.root]
    expected_depth = float((depths[is_leaf] * samples[is_leaf]).sum() / total)
    return st.snapshot(), expected_depth


def main() -> None:
    rng = np.random.default_rng(11)
    forest = [decision_tree_shape(2048, max_depth=24, seed=s) for s in range(8)]
    print(f"forest: {len(forest)} trees × {forest[0].n} nodes each")

    rows = []
    totals = {"light_first": 0, "bfs": 0}
    for order in ("light_first", "bfs"):
        energy = depth = 0
        exp_depths = []
        for tree in forest:
            snap, e_depth = analyze_tree(tree, rng, order)
            energy += snap["energy"]
            depth = max(depth, snap["depth"])
            exp_depths.append(e_depth)
        totals[order] = energy
        rows.append(
            {
                "layout": order,
                "forest_energy": energy,
                "max_tree_depth_cost": depth,
                "mean_inference_depth": round(float(np.mean(exp_depths)), 2),
            }
        )
    print()
    print(format_table(rows))
    ratio = totals["bfs"] / totals["light_first"]
    print(f"\nBFS layout costs {ratio:.1f}× the energy of light-first for the "
          "same forest statistics (§III).")

    # per-edge geometry, the quantity a hardware mapper would care about
    geo = []
    for order in ("light_first", "bfs", "random"):
        m = LayoutMetrics.of(TreeLayout.build(forest[0], order=order, seed=3))
        geo.append({"layout": order,
                    "mean_parent_child_distance": round(m.mean_distance, 2),
                    "max": m.max_distance})
    print()
    print(format_table(geo))


if __name__ == "__main__":
    main()
