#!/usr/bin/env python
"""Minimum-cut building block (paper §I-C, §V: "subroutines for other graph
algorithms, such as the computation of minimum cuts [Karger]").

Given a graph = spanning tree + non-tree edges, Karger's near-linear mincut
algorithm repeatedly needs the value of every *1-respecting cut* — the cut
induced by deleting a single tree edge. That is exactly one batched LCA
plus one treefix sum on the spatial machine (see repro.spatial.graph).

This example builds a random connected graph, computes all n−1 cut values
on the machine, verifies them against a brute-force oracle, and reports the
energy/depth bill — the spatial price of the Karger inner loop.

Run:  python examples/graph_cuts.py
"""

import numpy as np

from repro import SpatialTree
from repro.analysis import format_table
from repro.spatial.graph import one_respecting_cuts, one_respecting_cuts_reference
from repro.trees import prufer_random_tree


def main() -> None:
    n = 2048
    m_extra = 3 * n  # average degree ≈ 8
    rng = np.random.default_rng(3)

    tree = prufer_random_tree(n, seed=17)  # the spanning tree
    raw = rng.integers(0, n, size=(m_extra + n, 2))
    extra = raw[raw[:, 0] != raw[:, 1]][:m_extra]
    weights = rng.integers(1, 16, size=len(extra))
    tree_w = rng.integers(1, 16, size=n)

    print(f"graph: n={n} vertices, {n - 1} tree edges + {len(extra)} non-tree edges")

    st = SpatialTree.build(tree)
    cuts = one_respecting_cuts(
        st, extra, edge_weights=weights, tree_edge_weights=tree_w, seed=4
    )
    v, best = cuts.minimum(tree)
    snap = st.snapshot()

    # verify a sample against the brute-force oracle
    small = prufer_random_tree(200, seed=18)
    small_extra = rng.integers(0, 200, size=(300, 2))
    small_extra = small_extra[small_extra[:, 0] != small_extra[:, 1]]
    st_small = SpatialTree.build(small)
    got = one_respecting_cuts(st_small, small_extra, seed=5)
    expect = one_respecting_cuts_reference(small, small_extra)
    nonroot = small.parents >= 0
    assert np.array_equal(got.cut[nonroot], expect[nonroot])
    print("verification on n=200 instance: all cut values match the oracle")

    rows = [
        {"quantity": "lightest 1-respecting cut", "value": best},
        {"quantity": "  at tree edge above vertex", "value": v},
        {"quantity": "machine energy", "value": snap["energy"]},
        {"quantity": "machine depth", "value": snap["depth"]},
        {"quantity": "messages", "value": snap["messages"]},
    ]
    print()
    print(format_table(rows))
    print(
        f"\nenergy per graph edge: "
        f"{snap['energy'] / (n - 1 + len(extra)):.1f} — the near-linear Karger "
        "inner loop the paper's kernels enable (§I-C)."
    )


if __name__ == "__main__":
    main()
