#!/usr/bin/env python
"""Congestion on the wafer: where do the messages actually go?

§II-A motivates energy as a congestion proxy: "longer distances increase
latency, indicate potential congestion". This example attaches the
XY-routing congestion tracer to the machine and runs the same treefix sum
under a light-first and a random layout, rendering the per-cell traversal
load as ASCII heatmaps. The light-first layout keeps traffic local
(uniform, dim map); the random layout floods the whole grid.

Run:  python examples/wafer_congestion.py
"""

import numpy as np

from repro import SpatialTree
from repro.machine import attach_tracer, render_heatmap
from repro.spatial.treefix import treefix_sum
from repro.trees import prufer_random_tree


def run_with_layout(tree, order):
    st = SpatialTree.build(tree, order=order, seed=0)
    tracer = attach_tracer(st.machine)
    treefix_sum(st, np.ones(tree.n, dtype=np.int64), seed=1)
    return st, tracer


def main() -> None:
    n = 1024  # 32×32 grid — small enough to eyeball
    tree = prufer_random_tree(n, seed=5)

    print(f"treefix sum over a random tree, n={n} "
          f"(grid 32×32, XY dimension-order routing)\n")
    for order in ("light_first", "random"):
        st, tracer = run_with_layout(tree, order)
        print(f"--- layout: {order} ---")
        print(f"energy {st.machine.energy:,}   messages {st.machine.messages:,}   "
              f"hottest cell carries {tracer.max_load:,} traversals")
        print(render_heatmap(tracer))
        print()

    st_good, tr_good = run_with_layout(tree, "light_first")
    st_bad, tr_bad = run_with_layout(tree, "random")
    print(f"peak congestion ratio (random / light-first): "
          f"{tr_bad.max_load / tr_good.max_load:.1f}×")
    print(f"energy ratio:                                 "
          f"{st_bad.machine.energy / st_good.machine.energy:.1f}×")


if __name__ == "__main__":
    main()
