#!/usr/bin/env python
"""Congestion on the wafer: where do the messages actually go?

§II-A motivates energy as a congestion proxy: "longer distances increase
latency, indicate potential congestion". This example attaches the
XY-routing congestion tracer to the machine and runs the same treefix sum
under a light-first and a random layout, rendering the per-cell traversal
load as ASCII heatmaps. The light-first layout keeps traffic local
(uniform, dim map); the random layout floods the whole grid.

Each run is also captured through the telemetry layer: a
:class:`~repro.analysis.report.RunReport` (with per-phase costs and the
congestion figures) is written next to this script as
``wafer_congestion_<order>.report.json``, and the raw heatmap grid is
dumped as ``wafer_congestion_<order>.heatmap.json`` — so the example
doubles as an integration-test fixture for the report schema.

Run:  python examples/wafer_congestion.py [outdir]
"""

import json
import pathlib
import sys

import numpy as np

from repro import SpatialTree
from repro.analysis.report import RunRecorder, RunReport
from repro.machine import attach_tracer, render_heatmap
from repro.spatial.treefix import treefix_sum
from repro.trees import prufer_random_tree


def run_with_layout(tree, order):
    st = SpatialTree.build(tree, order=order, seed=0)
    recorder = st.machine.attach(RunRecorder())
    tracer = attach_tracer(st.machine)
    treefix_sum(st, np.ones(tree.n, dtype=np.int64), seed=1)
    report = RunReport.from_machine(
        st.machine, recorder=recorder,
        meta={"example": "wafer_congestion", "order": order, "tree": "prufer"},
    )
    return st, tracer, report


def main(outdir=None) -> None:
    outdir = pathlib.Path(outdir) if outdir else pathlib.Path(__file__).parent
    n = 1024  # 32×32 grid — small enough to eyeball
    tree = prufer_random_tree(n, seed=5)

    print(f"treefix sum over a random tree, n={n} "
          f"(grid 32×32, XY dimension-order routing)\n")
    results = {}
    for order in ("light_first", "random"):
        st, tracer, report = run_with_layout(tree, order)
        results[order] = (st, tracer)
        print(f"--- layout: {order} ---")
        print(f"energy {st.machine.energy:,}   messages {st.machine.messages:,}   "
              f"hottest cell carries {tracer.max_load:,} traversals")
        print(render_heatmap(tracer))
        report_path = report.save(outdir / f"wafer_congestion_{order}.report.json")
        heatmap_path = outdir / f"wafer_congestion_{order}.heatmap.json"
        heatmap_path.write_text(json.dumps({
            "schema": "repro.heatmap/v1",
            "order": order,
            "side": tracer.side,
            "max_load": tracer.max_load,
            "total_traversals": tracer.total_traversals,
            "load": tracer.load.tolist(),
        }, indent=2) + "\n")
        print(f"[report → {report_path}   heatmap → {heatmap_path}]")
        print()

    (st_good, tr_good), (st_bad, tr_bad) = results["light_first"], results["random"]
    print(f"peak congestion ratio (random / light-first): "
          f"{tr_bad.max_load / tr_good.max_load:.1f}×")
    print(f"energy ratio:                                 "
          f"{st_bad.machine.energy / st_good.machine.energy:.1f}×")


if __name__ == "__main__":
    main(*sys.argv[1:2])
